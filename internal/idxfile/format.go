// Package idxfile implements TRACYIDX v3: a flat, section-based,
// little-endian columnar on-disk index format designed to be served
// straight out of the page cache.
//
// The gob formats (v0-v2, see internal/index) deserialize the whole
// corpus into heap objects on load — at 10⁵-10⁶ functions that costs
// seconds of reflection-driven decoding and a resident object graph many
// times the file size. v3 instead lays every piece of the corpus out as
// fixed-width column arrays plus one shared string table and one shared
// feature pool, so a reader can
//
//   - mmap the file and touch only the pages a query needs (function
//     metadata eagerly, instruction columns lazily per candidate),
//   - share those clean file-backed pages across every serving process
//     on the host, and
//   - reconstruct any single function in O(its size) with a handful of
//     allocations, no reflection.
//
// # On-disk layout
//
// All integers are little-endian. The file is:
//
//	header | section directory | section 0 | section 1 | ...
//
// Header (48 bytes):
//
//	off  size  field
//	  0     8  magic "TRACYIDX"
//	  8     1  format version (3)
//	  9     3  reserved (zero)
//	 12     4  section count   (u32)
//	 16     8  total file size (u64) — must equal the real size
//	 24     8  function count  (u64)
//	 32     4  crc32c of the section directory bytes (u32)
//	 36    12  reserved (zero)
//
// Section directory: section-count entries of 32 bytes each:
//
//	off  size  field
//	  0     4  section id (fourcc, u32)
//	  4     4  reserved (zero)
//	  8     8  byte offset of the section payload (u64, 8-aligned)
//	 16     8  payload length in bytes (u64)
//	 24     4  crc32c of the payload (u32)
//	 28     4  reserved (zero)
//
// Sections (every section payload is 8-byte aligned; every offset/length
// below is validated against the pool it indexes before a file is
// accepted):
//
//	STRB  string-table bytes, concatenated UTF-8
//	STRO  u32[nstrings+1] cumulative offsets into STRB; string id i is
//	      STRB[STRO[i]:STRO[i+1]]; id 0 is always the empty string
//	FUNC  40-byte function records:
//	      exe u32 (string id), name u32, truth u32, addr u32,
//	      entry u32 (entry block, function-local),
//	      blockOff u32 + nblocks u32 (range in BLCK),
//	      featOff u32 + nfeats u32 (range in FEAT), reserved u32
//	BLCK  20-byte basic-block records:
//	      addr u32, instOff u32 + ninsts u32 (range in INST),
//	      succOff u32 + nsuccs u32 (range in SUCC)
//	INST  12-byte instruction records:
//	      mnemonic u32 (string id), opOff u32 + nops u32 (range in OPND)
//	OPND  24-byte operand records:
//	      kind u8 (asm.ArgKind), cls u8 (asm.SymClass), reg u8, flags u8
//	      (bit0: offset-prefixed, bit1: memory operand), sym u32 (string
//	      id), imm i64, memOff u32 + nmem u32 (range in MEMT)
//	MEMT  16-byte memory-term records:
//	      op u8 ('+', '-', '*'), kind u8, cls u8, reg u8, sym u32 (string
//	      id), imm i64
//	SUCC  u32 successor block indices (function-local)
//	FEAT  u64 prefilter features; per-function slices of the shared pool
//	LSHB  optional MinHash/LSH signature block (absent in files written
//	      before the lsh prefilter mode existed; readers treat absence
//	      as "no lsh index"). Layout: a 16-byte header —
//	          bands u32, rows u32, seed u64
//	      — followed by exactly nfuncs·bands·rows u32 signature values,
//	      function-major (function i's signature is the k = bands·rows
//	      values starting at 16 + i·k·4). The section length must equal
//	      16 + nfuncs·k·4 exactly; bands/rows are capped by
//	      minhash.MaxBands/MaxRows. Signatures are computed by
//	      minhash.Signature over the function's FEAT slice, so a reader
//	      can always verify or regenerate them.
//
// # Lifetime and unmap safety
//
// Open maps the file with a shared read-only mapping. Decoded strings
// never alias the mapping (the string table is copied once into one Go
// string at parse time), but the per-function feature slices returned by
// Features DO alias it, as does every raw section. Close unmaps; the
// caller owns proving nothing derived from the mapping is still live.
// The serving layer never calls Close on a hot-swapped file — the old
// mapping stays valid for in-flight queries and is unmapped by a
// finalizer once the last snapshot referencing it is collected.
package idxfile

import (
	"encoding/binary"
	"hash/crc32"
)

// Magic and Version are the v3 file prelude, byte-compatible with the
// gob header sniffing in internal/index (8-byte magic + version byte).
const (
	Magic   = "TRACYIDX"
	Version = 3
)

// Fixed layout sizes.
const (
	headerSize   = 48
	dirEntrySize = 32

	funcRecSize = 40
	blckRecSize = 20
	instRecSize = 12
	opndRecSize = 24
	memtRecSize = 16
	succRecSize = 4
	featRecSize = 8
	stroRecSize = 4

	lshHdrSize = 16 // LSHB header: bands u32, rows u32, seed u64
	lshSigSize = 4  // one u32 signature value
)

// Section ids (fourcc, little-endian u32 on disk).
const (
	SecSTRB = "STRB"
	SecSTRO = "STRO"
	SecFUNC = "FUNC"
	SecBLCK = "BLCK"
	SecINST = "INST"
	SecOPND = "OPND"
	SecMEMT = "MEMT"
	SecSUCC = "SUCC"
	SecFEAT = "FEAT"
	SecLSHB = "LSHB" // optional; not in requiredSections
)

// requiredSections is the canonical section order the writer emits and
// the parser requires (extra unknown sections are tolerated and skipped,
// so the format can grow).
var requiredSections = []string{
	SecSTRB, SecSTRO, SecFUNC, SecBLCK, SecINST, SecOPND, SecMEMT, SecSUCC, SecFEAT,
}

// Operand flag bits.
const (
	opndFlagOffset = 1 << 0 // "offset name" operand
	opndFlagMem    = 1 << 1 // memory operand ([...])
)

// crcTable is the Castagnoli polynomial (hardware-accelerated on amd64
// and arm64), the checksum of every section and of the directory.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

func sectionID(name string) uint32 {
	b := []byte(name)
	return binary.LittleEndian.Uint32(b)
}

func sectionName(id uint32) string {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], id)
	return string(b[:])
}

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }
