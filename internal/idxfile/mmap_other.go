//go:build !unix

package idxfile

import "os"

// Open on platforms without the mmap fast path reads the whole file
// into the heap and parses it. Same semantics, no page sharing.
func Open(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Parse(data)
	if err != nil {
		return nil, err
	}
	f.path = path
	return f, nil
}
