//go:build unix

package idxfile

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
)

// Open maps path read-only with a shared mapping and parses it. Pages
// fault in on demand and are shared with every other process mapping
// the same file, so N serving processes cost one resident copy of the
// hot pages.
//
// The mapping is released either by an explicit Close (one-shot CLI
// use, where the caller controls all derived slices) or, if the File is
// simply dropped, by a finalizer — the pattern the server's hot reload
// relies on: in-flight queries keep the old File reachable through
// their snapshot, and the kernel region outlives them all.
func Open(path string) (*File, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < headerSize {
		return nil, corruptf("file shorter than header (%d bytes)", size)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("idxfile: %s: file too large to map", path)
	}
	data, err := syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("idxfile: mmap %s: %w", path, err)
	}
	f, err := Parse(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	f.path = path
	f.mapped = data
	f.cleanup = func() { syscall.Munmap(data) }
	runtime.SetFinalizer(f, func(ff *File) {
		if ff.cleanup != nil {
			ff.cleanup()
			ff.cleanup = nil
		}
	})
	return f, nil
}
