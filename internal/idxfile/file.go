package idxfile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"unsafe"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/minhash"
	"repro/internal/prep"
)

// SectionInfo describes one section of a parsed file, for tracy idxinfo
// and tests.
type SectionInfo struct {
	Name    string
	Offset  uint64
	Len     uint64
	CRC     uint32
	Records int // record count (0 for byte-granular sections)
}

// File is a parsed v3 index. All accessors are safe for any number of
// concurrent readers; nothing in a File mutates after Parse. The backing
// data is either an mmap region (Open) or a heap buffer (Parse over
// bytes from any reader).
type File struct {
	data []byte // whole file
	path string // "" when parsed from memory

	strtab string   // one copy of STRB; string values slice into it
	stro   []uint32 // nstrings+1 offsets

	funcs []byte // FUNC payload
	blcks []byte
	insts []byte
	opnds []byte
	memts []byte
	succs []byte
	feats []uint64 // FEAT as native u64s (zero-copy when 8-aligned)

	lshParams minhash.Params // valid iff hasLSH
	lshSigs   []uint32       // nfuncs*K() values, function-major (zero-copy when 4-aligned)
	hasLSH    bool

	sections []SectionInfo
	nfuncs   int

	mapped  []byte // non-nil iff the data is an mmap region owned by this File
	cleanup func() // unmaps; set by Open
}

// corruptError is the typed "this is not a valid v3 index" failure; every
// validation path returns one so callers (and the fuzzer) can tell
// corruption from I/O errors.
type corruptError struct{ msg string }

func (e *corruptError) Error() string { return "idxfile: corrupt index: " + e.msg }

func corruptf(format string, args ...any) error {
	return &corruptError{msg: fmt.Sprintf(format, args...)}
}

// IsCorrupt reports whether err marks a structurally invalid index file.
func IsCorrupt(err error) bool {
	_, ok := err.(*corruptError)
	return ok
}

// SniffVersion inspects a file prelude (>= 9 bytes) and returns the
// TRACYIDX format version it announces: 3 for this package's format,
// 1/2 for the headered gob formats, 0 for a headerless v0 gob payload
// or anything unrecognized.
func SniffVersion(prelude []byte) int {
	if len(prelude) < len(Magic)+1 || string(prelude[:len(Magic)]) != Magic {
		return 0
	}
	return int(prelude[len(Magic)])
}

// Parse validates data as a complete v3 file and returns a File reading
// from it. The caller keeps ownership of data and must not mutate it.
//
// Validation is complete: the header, the section directory (every
// offset/length checked against the file size), and every record's
// cross-section offset/length ranges are verified before Parse returns,
// so the per-function decoders can index the columns without rechecking
// untrusted lengths. Section payload checksums are NOT verified here
// (that would force every page resident, defeating lazy loading); use
// Verify for an integrity pass.
func Parse(data []byte) (*File, error) {
	f := &File{data: data}
	if err := f.parseHeader(); err != nil {
		return nil, err
	}
	if err := f.validateAll(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *File) parseHeader() error {
	data := f.data
	if len(data) < headerSize {
		return corruptf("file shorter than header (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return corruptf("bad magic")
	}
	if v := data[8]; v != Version {
		return corruptf("format v%d, want v%d", v, Version)
	}
	nsec := binary.LittleEndian.Uint32(data[12:])
	fileSize := binary.LittleEndian.Uint64(data[16:])
	nfuncs := binary.LittleEndian.Uint64(data[24:])
	dirCRC := binary.LittleEndian.Uint32(data[32:])
	if fileSize != uint64(len(data)) {
		return corruptf("header file size %d, real size %d", fileSize, len(data))
	}
	if nsec < uint32(len(requiredSections)) || nsec > 64 {
		return corruptf("section count %d out of range", nsec)
	}
	dirLen := int(nsec) * dirEntrySize
	if headerSize+dirLen > len(data) {
		return corruptf("section directory overruns file")
	}
	dir := data[headerSize : headerSize+dirLen]
	if got := crc32.Checksum(dir, crcTable); got != dirCRC {
		return corruptf("section directory checksum %08x, want %08x", got, dirCRC)
	}
	if nfuncs > uint64(len(data)/funcRecSize) {
		return corruptf("function count %d impossible for %d-byte file", nfuncs, len(data))
	}
	f.nfuncs = int(nfuncs)

	payloads := make(map[string][]byte, nsec)
	for i := 0; i < int(nsec); i++ {
		e := dir[i*dirEntrySize:]
		name := sectionName(binary.LittleEndian.Uint32(e))
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		crc := binary.LittleEndian.Uint32(e[24:])
		if off%8 != 0 {
			return corruptf("section %s misaligned at offset %d", name, off)
		}
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return corruptf("section %s [%d,+%d) overruns %d-byte file", name, off, length, len(data))
		}
		if _, dup := payloads[name]; dup {
			return corruptf("duplicate section %s", name)
		}
		payloads[name] = data[off : off+length]
		f.sections = append(f.sections, SectionInfo{Name: name, Offset: off, Len: length, CRC: crc})
	}
	recSizes := map[string]int{
		SecSTRO: stroRecSize, SecFUNC: funcRecSize, SecBLCK: blckRecSize,
		SecINST: instRecSize, SecOPND: opndRecSize, SecMEMT: memtRecSize,
		SecSUCC: succRecSize, SecFEAT: featRecSize,
	}
	for _, name := range requiredSections {
		p, ok := payloads[name]
		if !ok {
			return corruptf("missing section %s", name)
		}
		if rs := recSizes[name]; rs != 0 && len(p)%rs != 0 {
			return corruptf("section %s length %d not a multiple of its %d-byte record", name, len(p), rs)
		}
	}
	for i := range f.sections {
		s := &f.sections[i]
		if rs := recSizes[s.Name]; rs != 0 {
			s.Records = int(s.Len) / rs
		}
	}

	// The string table: one heap copy of the bytes; every string value is
	// a slice of it, so decoded functions never alias the mapping.
	f.strtab = string(payloads[SecSTRB])
	strob := payloads[SecSTRO]
	if len(strob) == 0 {
		return corruptf("empty string offset table")
	}
	f.stro = make([]uint32, len(strob)/stroRecSize)
	prev := uint32(0)
	for i := range f.stro {
		v := binary.LittleEndian.Uint32(strob[i*stroRecSize:])
		if v < prev || v > uint32(len(f.strtab)) {
			return corruptf("string offset %d at entry %d not monotonic within table", v, i)
		}
		f.stro[i] = v
		prev = v
	}
	if f.stro[0] != 0 {
		return corruptf("string offsets must start at 0")
	}

	f.funcs = payloads[SecFUNC]
	f.blcks = payloads[SecBLCK]
	f.insts = payloads[SecINST]
	f.opnds = payloads[SecOPND]
	f.memts = payloads[SecMEMT]
	f.succs = payloads[SecSUCC]
	if f.nfuncs != len(f.funcs)/funcRecSize {
		return corruptf("header says %d functions, FUNC holds %d", f.nfuncs, len(f.funcs)/funcRecSize)
	}

	featb := payloads[SecFEAT]
	if len(featb) == 0 {
		f.feats = nil
	} else if uintptr(unsafe.Pointer(&featb[0]))%8 == 0 {
		f.feats = unsafe.Slice((*uint64)(unsafe.Pointer(&featb[0])), len(featb)/featRecSize)
	} else {
		// A heap buffer handed to Parse need not be 8-aligned; copy once.
		f.feats = make([]uint64, len(featb)/featRecSize)
		for i := range f.feats {
			f.feats[i] = binary.LittleEndian.Uint64(featb[i*featRecSize:])
		}
	}

	if lshb, ok := payloads[SecLSHB]; ok {
		if err := f.parseLSH(lshb); err != nil {
			return err
		}
	}
	return nil
}

// parseLSH validates and adopts the optional LSHB section. The length
// check is exact — header plus nfuncs·k signature values and nothing
// else — so every LSHSig call is in bounds by construction.
func (f *File) parseLSH(p []byte) error {
	if len(p) < lshHdrSize {
		return corruptf("section LSHB shorter than its %d-byte header (%d bytes)", lshHdrSize, len(p))
	}
	params := minhash.Params{
		Bands: int(binary.LittleEndian.Uint32(p)),
		Rows:  int(binary.LittleEndian.Uint32(p[4:])),
		Seed:  binary.LittleEndian.Uint64(p[8:]),
	}
	if !params.Valid() {
		return corruptf("section LSHB has unusable parameters (%d bands x %d rows)", params.Bands, params.Rows)
	}
	k := uint64(params.K())
	want := uint64(lshHdrSize) + uint64(f.nfuncs)*k*lshSigSize
	if uint64(len(p)) != want {
		return corruptf("section LSHB length %d, want exactly %d for %d functions x k=%d",
			len(p), want, f.nfuncs, k)
	}
	sigb := p[lshHdrSize:]
	n := len(sigb) / lshSigSize
	if n == 0 {
		f.lshSigs = nil
	} else if uintptr(unsafe.Pointer(&sigb[0]))%4 == 0 {
		f.lshSigs = unsafe.Slice((*uint32)(unsafe.Pointer(&sigb[0])), n)
	} else {
		// Heap buffers handed to Parse need not be aligned; copy once.
		f.lshSigs = make([]uint32, n)
		for i := range f.lshSigs {
			f.lshSigs[i] = binary.LittleEndian.Uint32(sigb[i*lshSigSize:])
		}
	}
	f.lshParams = params
	f.hasLSH = true
	// Surface a per-function record count in idxinfo's section table.
	for i := range f.sections {
		if f.sections[i].Name == SecLSHB {
			f.sections[i].Records = f.nfuncs
		}
	}
	return nil
}

// validateAll walks every record and checks each offset/length field
// against the pool it indexes, so decode paths never read out of range
// no matter what bytes arrived. One sequential pass, pure integer work.
func (f *File) validateAll() error {
	nstr := uint32(len(f.stro) - 1)
	nBlocks := uint32(len(f.blcks) / blckRecSize)
	nInsts := uint32(len(f.insts) / instRecSize)
	nOps := uint32(len(f.opnds) / opndRecSize)
	nMems := uint32(len(f.memts) / memtRecSize)
	nSuccs := uint32(len(f.succs) / succRecSize)
	nFeats := uint32(len(f.feats))

	for i := 0; i < f.nfuncs; i++ {
		r := f.funcs[i*funcRecSize:]
		exe := binary.LittleEndian.Uint32(r)
		name := binary.LittleEndian.Uint32(r[4:])
		truth := binary.LittleEndian.Uint32(r[8:])
		entry := binary.LittleEndian.Uint32(r[16:])
		blockOff := binary.LittleEndian.Uint32(r[20:])
		nblocks := binary.LittleEndian.Uint32(r[24:])
		featOff := binary.LittleEndian.Uint32(r[28:])
		nfeats := binary.LittleEndian.Uint32(r[32:])
		if exe >= nstr || name >= nstr || truth >= nstr {
			return corruptf("function %d: string id out of table (%d strings)", i, nstr)
		}
		if nblocks == 0 || blockOff > nBlocks || nblocks > nBlocks-blockOff {
			return corruptf("function %d: block range [%d,+%d) of %d", i, blockOff, nblocks, nBlocks)
		}
		if entry >= nblocks {
			return corruptf("function %d: entry block %d of %d", i, entry, nblocks)
		}
		if featOff > nFeats || nfeats > nFeats-featOff {
			return corruptf("function %d: feature range [%d,+%d) of %d", i, featOff, nfeats, nFeats)
		}
		for bi := blockOff; bi < blockOff+nblocks; bi++ {
			br := f.blcks[bi*blckRecSize:]
			instOff := binary.LittleEndian.Uint32(br[4:])
			ninsts := binary.LittleEndian.Uint32(br[8:])
			succOff := binary.LittleEndian.Uint32(br[12:])
			nsuccs := binary.LittleEndian.Uint32(br[16:])
			if instOff > nInsts || ninsts > nInsts-instOff {
				return corruptf("function %d block %d: instruction range [%d,+%d) of %d", i, bi, instOff, ninsts, nInsts)
			}
			if succOff > nSuccs || nsuccs > nSuccs-succOff {
				return corruptf("function %d block %d: successor range [%d,+%d) of %d", i, bi, succOff, nsuccs, nSuccs)
			}
			for si := succOff; si < succOff+nsuccs; si++ {
				s := binary.LittleEndian.Uint32(f.succs[si*succRecSize:])
				if s >= nblocks {
					return corruptf("function %d block %d: successor %d of %d blocks", i, bi, s, nblocks)
				}
			}
		}
	}
	// Instruction, operand and memory-term records are shared pools;
	// validate them each once rather than per referencing function.
	for i := uint32(0); i < nInsts; i++ {
		r := f.insts[i*instRecSize:]
		mnem := binary.LittleEndian.Uint32(r)
		opOff := binary.LittleEndian.Uint32(r[4:])
		nops := binary.LittleEndian.Uint32(r[8:])
		if mnem >= nstr {
			return corruptf("instruction %d: mnemonic id %d of %d strings", i, mnem, nstr)
		}
		if opOff > nOps || nops > nOps-opOff {
			return corruptf("instruction %d: operand range [%d,+%d) of %d", i, opOff, nops, nOps)
		}
	}
	for i := uint32(0); i < nOps; i++ {
		r := f.opnds[i*opndRecSize:]
		kind := r[0]
		sym := binary.LittleEndian.Uint32(r[4:])
		memOff := binary.LittleEndian.Uint32(r[16:])
		nmem := binary.LittleEndian.Uint32(r[20:])
		if kind > byte(asm.KindSym) {
			return corruptf("operand %d: bad argument kind %d", i, kind)
		}
		if sym >= nstr {
			return corruptf("operand %d: symbol id %d of %d strings", i, sym, nstr)
		}
		if memOff > nMems || nmem > nMems-memOff {
			return corruptf("operand %d: memory-term range [%d,+%d) of %d", i, memOff, nmem, nMems)
		}
		if r[3]&opndFlagMem != 0 && nmem == 0 {
			return corruptf("operand %d: memory operand with no terms", i)
		}
	}
	for i := uint32(0); i < nMems; i++ {
		r := f.memts[i*memtRecSize:]
		switch asm.MemOp(r[0]) {
		case asm.OpAdd, asm.OpSub, asm.OpMul:
		default:
			return corruptf("memory term %d: bad operator %q", i, r[0])
		}
		if r[1] > byte(asm.KindSym) {
			return corruptf("memory term %d: bad argument kind %d", i, r[1])
		}
		if sym := binary.LittleEndian.Uint32(r[4:]); sym >= nstr {
			return corruptf("memory term %d: symbol id %d of %d strings", i, sym, nstr)
		}
	}
	return nil
}

// Verify recomputes every section checksum against the directory — the
// integrity pass behind tracy idxinfo -verify and tracy convert. It
// touches every page of the file.
func (f *File) Verify() error {
	for _, s := range f.sections {
		got := crc32.Checksum(f.data[s.Offset:s.Offset+s.Len], crcTable)
		if got != s.CRC {
			return corruptf("section %s checksum %08x, want %08x", s.Name, got, s.CRC)
		}
	}
	return nil
}

// NumFuncs returns the number of indexed functions.
func (f *File) NumFuncs() int { return f.nfuncs }

// Path returns the file path backing the mapping, or "" when parsed
// from memory.
func (f *File) Path() string { return f.path }

// Size returns the total file size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Sections returns the section directory (a copy; safe to retain).
func (f *File) Sections() []SectionInfo {
	return append([]SectionInfo(nil), f.sections...)
}

// Mapped reports whether the file is backed by an mmap region (as
// opposed to a heap buffer).
func (f *File) Mapped() bool { return f.mapped != nil }

func (f *File) str(id uint32) string {
	return f.strtab[f.stro[id]:f.stro[id+1]]
}

// Meta is the cheap per-function metadata: everything an index entry
// needs without decoding the function body.
type Meta struct {
	Exe   string
	Name  string
	Truth string
	Addr  uint32
}

// Meta returns the metadata of function i.
func (f *File) Meta(i int) Meta {
	r := f.funcs[i*funcRecSize:]
	return Meta{
		Exe:   f.str(binary.LittleEndian.Uint32(r)),
		Name:  f.str(binary.LittleEndian.Uint32(r[4:])),
		Truth: f.str(binary.LittleEndian.Uint32(r[8:])),
		Addr:  binary.LittleEndian.Uint32(r[12:]),
	}
}

// Features returns function i's prefilter feature slice. The slice
// aliases the file mapping (zero copy); it stays valid exactly as long
// as the File is not Closed.
func (f *File) Features(i int) []uint64 {
	r := f.funcs[i*funcRecSize:]
	off := binary.LittleEndian.Uint32(r[28:])
	n := binary.LittleEndian.Uint32(r[32:])
	return f.feats[off : off+n : off+n]
}

// HasLSH reports whether the file carries an LSHB MinHash signature
// section (files written before the lsh prefilter existed do not).
func (f *File) HasLSH() bool { return f.hasLSH }

// LSHParams returns the banding parameters the signatures were computed
// under (the zero Params when HasLSH is false).
func (f *File) LSHParams() minhash.Params {
	if !f.hasLSH {
		return minhash.Params{}
	}
	return f.lshParams
}

// LSHSig returns function i's MinHash signature (K values). The slice
// may alias the file mapping; it stays valid exactly as long as the
// File is not Closed. It returns nil when HasLSH is false.
func (f *File) LSHSig(i int) []uint32 {
	if !f.hasLSH {
		return nil
	}
	k := f.lshParams.K()
	return f.lshSigs[i*k : (i+1)*k : (i+1)*k]
}

// LSHSigs returns the whole signature pool, function-major — what a
// snapshot adopts wholesale to build its band buckets. Nil when HasLSH
// is false.
func (f *File) LSHSigs() []uint32 { return f.lshSigs }

// DecodeFunc materializes function i as a lifted prep.Function,
// identical field for field to the function the gob formats carry. It
// allocates one instruction array and one successor array for the whole
// function plus the per-block/operand slices; strings are shared slices
// of the file's one string-table copy. Safe for concurrent callers.
func (f *File) DecodeFunc(i int) *prep.Function {
	r := f.funcs[i*funcRecSize:]
	name := f.str(binary.LittleEndian.Uint32(r[4:]))
	addr := binary.LittleEndian.Uint32(r[12:])
	entry := int(binary.LittleEndian.Uint32(r[16:]))
	blockOff := int(binary.LittleEndian.Uint32(r[20:]))
	nblocks := int(binary.LittleEndian.Uint32(r[24:]))

	// One backing array for all instructions of the function.
	total := 0
	for bi := 0; bi < nblocks; bi++ {
		br := f.blcks[(blockOff+bi)*blckRecSize:]
		total += int(binary.LittleEndian.Uint32(br[8:]))
	}
	instBuf := make([]asm.Inst, 0, total)

	g := &cfg.Graph{Name: name, Entry: entry, Blocks: make([]*cfg.Block, nblocks)}
	for bi := 0; bi < nblocks; bi++ {
		br := f.blcks[(blockOff+bi)*blckRecSize:]
		baddr := binary.LittleEndian.Uint32(br)
		instOff := int(binary.LittleEndian.Uint32(br[4:]))
		ninsts := int(binary.LittleEndian.Uint32(br[8:]))
		succOff := int(binary.LittleEndian.Uint32(br[12:]))
		nsuccs := int(binary.LittleEndian.Uint32(br[16:]))

		start := len(instBuf)
		for ii := 0; ii < ninsts; ii++ {
			instBuf = append(instBuf, f.decodeInst(instOff+ii))
		}
		var succs []int
		if nsuccs > 0 {
			succs = make([]int, nsuccs)
			for si := 0; si < nsuccs; si++ {
				succs[si] = int(binary.LittleEndian.Uint32(f.succs[(succOff+si)*succRecSize:]))
			}
		}
		var insts []asm.Inst
		if ninsts > 0 {
			insts = instBuf[start:len(instBuf):len(instBuf)]
		}
		g.Blocks[bi] = &cfg.Block{Index: bi, Addr: baddr, Insts: insts, Succs: succs}
	}
	return &prep.Function{Name: name, Addr: addr, Graph: g}
}

func (f *File) decodeInst(i int) asm.Inst {
	r := f.insts[i*instRecSize:]
	mnem := f.str(binary.LittleEndian.Uint32(r))
	opOff := int(binary.LittleEndian.Uint32(r[4:]))
	nops := int(binary.LittleEndian.Uint32(r[8:]))
	in := asm.Inst{Mnemonic: mnem}
	if nops > 0 {
		in.Ops = make([]asm.Operand, nops)
		for oi := 0; oi < nops; oi++ {
			in.Ops[oi] = f.decodeOperand(opOff + oi)
		}
	}
	return in
}

func (f *File) decodeOperand(i int) asm.Operand {
	r := f.opnds[i*opndRecSize:]
	flags := r[3]
	op := asm.Operand{
		Arg:    f.decodeArg(r[0], r[1], r[2], binary.LittleEndian.Uint32(r[4:]), int64(binary.LittleEndian.Uint64(r[8:]))),
		Offset: flags&opndFlagOffset != 0,
	}
	if flags&opndFlagMem != 0 {
		memOff := int(binary.LittleEndian.Uint32(r[16:]))
		nmem := int(binary.LittleEndian.Uint32(r[20:]))
		op.Mem = make([]asm.MemTerm, nmem)
		for ti := 0; ti < nmem; ti++ {
			tr := f.memts[(memOff+ti)*memtRecSize:]
			op.Mem[ti] = asm.MemTerm{
				Op:  asm.MemOp(tr[0]),
				Arg: f.decodeArg(tr[1], tr[2], tr[3], binary.LittleEndian.Uint32(tr[4:]), int64(binary.LittleEndian.Uint64(tr[8:]))),
			}
		}
	}
	return op
}

func (f *File) decodeArg(kind, cls, reg byte, sym uint32, imm int64) asm.Arg {
	a := asm.Arg{Kind: asm.ArgKind(kind)}
	switch a.Kind {
	case asm.KindReg:
		a.Reg = asm.Reg(reg)
	case asm.KindImm:
		a.Imm = imm
	case asm.KindSym:
		a.Sym = f.str(sym)
		a.Cls = asm.SymClass(cls)
	}
	return a
}

// Close releases the mapping when the File came from Open; for a File
// parsed from a caller-owned buffer it is a no-op. After Close every
// Features slice and raw section view is invalid — callers must prove
// nothing derived from the mapping is still reachable (the serving layer
// instead drops its reference and lets the finalizer unmap).
func (f *File) Close() error {
	if f.cleanup != nil {
		c := f.cleanup
		f.cleanup = nil
		c()
	}
	return nil
}
