package idxfile

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/minhash"
)

// buildLSHFile encodes the hand corpus with an LSHB section under p.
func buildLSHFile(t *testing.T, p minhash.Params) []byte {
	t.Helper()
	exes, fns, truths, feats := handFuncs()
	b := NewBuilder()
	b.SetLSH(p)
	for i, fn := range fns {
		b.Add(exes[i], fn, truths[i], feats[i])
	}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// lshSection locates the LSHB directory entry of a parsed file.
func lshSection(t *testing.T, data []byte) SectionInfo {
	t.Helper()
	f, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Sections() {
		if s.Name == SecLSHB {
			return s
		}
	}
	t.Fatal("file has no LSHB section")
	return SectionInfo{}
}

// lshDirEntry returns the byte offset of LSHB's directory entry.
func lshDirEntry(t *testing.T, data []byte) int {
	t.Helper()
	nsec := int(binary.LittleEndian.Uint32(data[12:]))
	for i := 0; i < nsec; i++ {
		off := headerSize + i*dirEntrySize
		if sectionName(binary.LittleEndian.Uint32(data[off:])) == SecLSHB {
			return off
		}
	}
	t.Fatal("no LSHB directory entry")
	return 0
}

func TestLSHRoundTrip(t *testing.T) {
	p := minhash.Default
	_, _, _, feats := handFuncs()
	data := buildLSHFile(t, p)
	f, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !f.HasLSH() {
		t.Fatal("HasLSH = false after SetLSH round trip")
	}
	if got := f.LSHParams(); got != p {
		t.Fatalf("LSHParams = %+v, want %+v", got, p)
	}
	if got := len(f.LSHSigs()); got != f.NumFuncs()*p.K() {
		t.Fatalf("signature pool holds %d values, want %d", got, f.NumFuncs()*p.K())
	}
	// Persisted signatures must be byte-identical to freshly computed
	// ones — the determinism contract the lsh prefilter relies on.
	for i := range feats {
		want := minhash.Signature(nil, feats[i], p)
		got := f.LSHSig(i)
		if len(got) != p.K() {
			t.Fatalf("func %d: signature length %d, want k=%d", i, len(got), p.K())
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("func %d: signature position %d = %d, want %d", i, j, got[j], want[j])
			}
		}
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("Verify on a fresh LSH file: %v", err)
	}
	// The section table surfaces LSHB with a per-function record count.
	sec := lshSection(t, data)
	if sec.Records != f.NumFuncs() {
		t.Errorf("LSHB Records = %d, want %d", sec.Records, f.NumFuncs())
	}
	if sec.Len != uint64(lshHdrSize+f.NumFuncs()*p.K()*lshSigSize) {
		t.Errorf("LSHB length = %d", sec.Len)
	}
}

func TestLSHAbsent(t *testing.T) {
	f, err := Parse(buildFile(t))
	if err != nil {
		t.Fatal(err)
	}
	if f.HasLSH() {
		t.Fatal("HasLSH = true on a file with no LSHB")
	}
	if f.LSHSig(0) != nil || f.LSHSigs() != nil {
		t.Fatal("LSH accessors returned data on a file with no LSHB")
	}
	if got := f.LSHParams(); got != (minhash.Params{}) {
		t.Fatalf("LSHParams = %+v on a file with no LSHB", got)
	}
}

func TestLSHBuilderMisuse(t *testing.T) {
	exes, fns, truths, feats := handFuncs()

	b := NewBuilder()
	b.Add(exes[0], fns[0], truths[0], feats[0])
	b.SetLSH(minhash.Default)
	if _, err := b.WriteTo(&bytes.Buffer{}); err == nil {
		t.Error("SetLSH after Add was accepted")
	}

	b = NewBuilder()
	b.SetLSH(minhash.Params{Bands: 0, Rows: 2})
	if _, err := b.WriteTo(&bytes.Buffer{}); err == nil {
		t.Error("invalid LSH parameters were accepted")
	}
}

// TestLSHParseRejectsCorruption: truncated, oversized (header demands
// fewer values than the payload carries), and parameter-corrupt LSHB
// sections must all fail Parse with a corruptError.
func TestLSHParseRejectsCorruption(t *testing.T) {
	data := buildLSHFile(t, minhash.Default)
	sec := lshSection(t, data)

	cases := []struct {
		name   string
		mutate func(b []byte)
	}{
		{"truncated payload", func(b []byte) {
			de := lshDirEntry(t, b)
			binary.LittleEndian.PutUint64(b[de+16:], sec.Len-4)
			fixDirCRC(b)
		}},
		{"header-only stub", func(b []byte) {
			de := lshDirEntry(t, b)
			binary.LittleEndian.PutUint64(b[de+16:], lshHdrSize)
			fixDirCRC(b)
		}},
		{"shorter than header", func(b []byte) {
			de := lshDirEntry(t, b)
			binary.LittleEndian.PutUint64(b[de+16:], 8)
			fixDirCRC(b)
		}},
		{"oversized for params", func(b []byte) {
			// Halving bands halves the expected payload; the real payload
			// is now oversized and must be rejected, not silently split.
			binary.LittleEndian.PutUint32(b[sec.Offset:], uint32(minhash.Default.Bands/2))
		}},
		{"zero bands", func(b []byte) {
			binary.LittleEndian.PutUint32(b[sec.Offset:], 0)
		}},
		{"huge rows", func(b []byte) {
			binary.LittleEndian.PutUint32(b[sec.Offset+4:], 1<<20)
		}},
		{"misaligned section", func(b []byte) {
			de := lshDirEntry(t, b)
			binary.LittleEndian.PutUint64(b[de+8:], sec.Offset+4)
			fixDirCRC(b)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := flip(data, tc.mutate)
			if _, err := Parse(mut); err == nil {
				t.Fatal("corrupt LSHB accepted")
			} else if !IsCorrupt(err) {
				t.Fatalf("want corruptError, got %T: %v", err, err)
			}
		})
	}
}

// TestLSHMisalignedBuffer: a heap buffer whose LSHB payload lands on an
// odd address must parse through the copy fallback with identical
// signature values.
func TestLSHMisalignedBuffer(t *testing.T) {
	data := buildLSHFile(t, minhash.Default)
	aligned, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	shifted := make([]byte, len(data)+1)
	copy(shifted[1:], data)
	mis, err := Parse(shifted[1 : 1+len(data)])
	if err != nil {
		t.Fatalf("misaligned buffer rejected: %v", err)
	}
	if !mis.HasLSH() {
		t.Fatal("misaligned parse dropped the LSHB section")
	}
	a, m := aligned.LSHSigs(), mis.LSHSigs()
	if len(a) != len(m) {
		t.Fatalf("pool sizes differ: %d vs %d", len(a), len(m))
	}
	for i := range a {
		if a[i] != m[i] {
			t.Fatalf("signature value %d differs across alignment: %d vs %d", i, a[i], m[i])
		}
	}
}

// TestLSHAccessorBounds: the exact-length validation in parseLSH is the
// structural proof that LSHSig cannot read out of bounds — exercise
// every index including the boundaries.
func TestLSHAccessorBounds(t *testing.T) {
	p := minhash.Params{Bands: 4, Rows: 3, Seed: 99}
	data := buildLSHFile(t, p)
	f, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	k := p.K()
	total := 0
	for i := 0; i < f.NumFuncs(); i++ {
		sig := f.LSHSig(i)
		if len(sig) != k {
			t.Fatalf("func %d: signature length %d, want %d", i, len(sig), k)
		}
		total += len(sig)
	}
	if total != len(f.LSHSigs()) {
		t.Fatalf("per-function slices cover %d values, pool holds %d", total, len(f.LSHSigs()))
	}
	// The last function's slice must end exactly at the pool's end.
	last := f.LSHSig(f.NumFuncs() - 1)
	if cap(last) != k {
		t.Errorf("last signature slice cap %d leaks past its bounds", cap(last))
	}
}
