package idxfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/minhash"
)

// FuzzIdxfileLoad throws arbitrary bytes at the v3 parser: Parse must
// reject garbage with a corruptError, never panic, and never index out
// of range. Any file Parse accepts must then decode every function and
// serve every accessor without faulting — the structural validation is
// the only wall between untrusted bytes and the unchecked decode paths.
func FuzzIdxfileLoad(f *testing.F) {
	// A genuine v3 file as the prime seed so the fuzzer mutates real
	// section structure instead of rediscovering the magic.
	exes, fns, truths, feats := handFuncs()
	var saved bytes.Buffer
	if _, err := Write(&saved, exes, fns, truths, feats); err != nil {
		f.Fatal(err)
	}
	f.Add(saved.Bytes())
	f.Add(saved.Bytes()[:saved.Len()/2])
	f.Add(saved.Bytes()[:headerSize])
	var empty bytes.Buffer
	if _, err := NewBuilder().WriteTo(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte("TRACYIDX\x03\x00\x00\x00garbage"))
	f.Add([]byte{})
	f.Add([]byte("not an index at all"))
	for _, seed := range lshFuzzSeeds(f) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		pf, err := Parse(data)
		if err != nil {
			if !IsCorrupt(err) {
				t.Fatalf("Parse returned a non-corruption error for bad bytes: %v", err)
			}
			return
		}
		// Accepted files must be fully traversable, LSH included.
		if pf.HasLSH() {
			lp := pf.LSHParams()
			if !lp.Valid() {
				t.Fatalf("Parse accepted unusable LSH parameters %+v", lp)
			}
			if len(pf.LSHSigs()) != pf.NumFuncs()*lp.K() {
				t.Fatalf("LSH pool holds %d values for %d functions x k=%d",
					len(pf.LSHSigs()), pf.NumFuncs(), lp.K())
			}
		}
		for i := 0; i < pf.NumFuncs(); i++ {
			m := pf.Meta(i)
			_ = m.Exe
			_ = pf.Features(i)
			if pf.HasLSH() {
				if sig := pf.LSHSig(i); len(sig) != pf.LSHParams().K() {
					t.Fatalf("LSHSig(%d) has %d values, want k=%d", i, len(sig), pf.LSHParams().K())
				}
			}
			fn := pf.DecodeFunc(i)
			if fn == nil || fn.Graph == nil || len(fn.Graph.Blocks) == 0 {
				t.Fatal("Parse accepted a function that decodes to a malformed graph")
			}
			if fn.Graph.Entry < 0 || fn.Graph.Entry >= len(fn.Graph.Blocks) {
				t.Fatalf("decoded entry %d of %d blocks", fn.Graph.Entry, len(fn.Graph.Blocks))
			}
			for _, b := range fn.Graph.Blocks {
				for _, s := range b.Succs {
					if s < 0 || s >= len(fn.Graph.Blocks) {
						t.Fatalf("decoded successor %d of %d blocks", s, len(fn.Graph.Blocks))
					}
				}
			}
		}
		_ = pf.Verify()
	})
}

// lshFuzzSeeds builds the LSHB-bearing seed set: a valid signed file,
// one with a truncated LSHB payload, one whose banding header demands a
// smaller payload than the section carries (oversized), and one with
// unusable parameters. The mutants let the fuzzer start from each
// rejection path instead of having to rediscover the section grammar.
func lshFuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	exes, fns, truths, feats := handFuncs()
	b := NewBuilder()
	b.SetLSH(minhash.Default)
	for i, fn := range fns {
		b.Add(exes[i], fn, truths[i], feats[i])
	}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	valid := buf.Bytes()

	var deOff int
	var secOff, secLen uint64
	nsec := int(binary.LittleEndian.Uint32(valid[12:]))
	for i := 0; i < nsec; i++ {
		off := headerSize + i*dirEntrySize
		if sectionName(binary.LittleEndian.Uint32(valid[off:])) == SecLSHB {
			deOff = off
			secOff = binary.LittleEndian.Uint64(valid[off+8:])
			secLen = binary.LittleEndian.Uint64(valid[off+16:])
		}
	}
	if secLen == 0 {
		tb.Fatal("seed file has no LSHB section")
	}

	truncated := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(truncated[deOff+16:], secLen-lshSigSize)
	fixDirCRC(truncated)

	oversized := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(oversized[secOff:], uint32(minhash.Default.Bands/2))

	badParams := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badParams[secOff:], 0)

	return [][]byte{valid, truncated, oversized, badParams}
}

// TestRegenerateFuzzSeeds rewrites the checked-in seed corpus under
// testdata/fuzz/FuzzIdxfileLoad when IDXFILE_REGEN_SEEDS=1, so format
// changes keep the seeds honest. A plain test run only asserts the
// seeds exist.
func TestRegenerateFuzzSeeds(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzIdxfileLoad")
	exes, fns, truths, feats := handFuncs()
	var valid bytes.Buffer
	if _, err := Write(&valid, exes, fns, truths, feats); err != nil {
		t.Fatal(err)
	}
	var empty bytes.Buffer
	if _, err := NewBuilder().WriteTo(&empty); err != nil {
		t.Fatal(err)
	}
	lsh := lshFuzzSeeds(t)
	seeds := map[string][]byte{
		"seed-valid-v3":       valid.Bytes(),
		"seed-empty-v3":       empty.Bytes(),
		"seed-truncated":      valid.Bytes()[:valid.Len()/2],
		"seed-header-only":    valid.Bytes()[:headerSize],
		"seed-bad-version":    []byte("TRACYIDX\x09\x00\x00\x00junk"),
		"seed-lshb-valid":     lsh[0],
		"seed-lshb-truncated": lsh[1],
		"seed-lshb-oversized": lsh[2],
		"seed-lshb-badparams": lsh[3],
	}
	if os.Getenv("IDXFILE_REGEN_SEEDS") == "" {
		for name := range seeds {
			if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
				t.Errorf("seed corpus missing %s (regenerate with IDXFILE_REGEN_SEEDS=1)", name)
			}
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
