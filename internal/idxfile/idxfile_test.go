package idxfile

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/corpus"
	"repro/internal/prep"
	"repro/internal/tinyc"
)

// handFuncs returns a small hand-built corpus exercising every record
// shape: registers, immediates, symbols, offset operands, multi-term
// memory operands, branching CFGs, empty blocks, shared strings.
func handFuncs() (exes []string, fns []*prep.Function, truths []string, feats [][]uint64) {
	add := func(exe, truth string, fn *prep.Function, fs []uint64) {
		exes = append(exes, exe)
		fns = append(fns, fn)
		truths = append(truths, truth)
		feats = append(feats, fs)
	}

	mem := asm.MemOperand(
		asm.MemTerm{Arg: asm.RegArg(asm.EBP)},
		asm.MemTerm{Op: asm.OpSub, Arg: asm.ImmArg(8)},
		asm.MemTerm{Op: asm.OpMul, Arg: asm.SymArg(asm.SymData, "tbl")},
	)
	g1 := &cfg.Graph{
		Name:  "alpha",
		Entry: 0,
		Blocks: []*cfg.Block{
			{Index: 0, Addr: 0x1000, Insts: []asm.Inst{
				{Mnemonic: "mov", Ops: []asm.Operand{{Arg: asm.RegArg(asm.EAX)}, mem}},
				{Mnemonic: "cmp", Ops: []asm.Operand{{Arg: asm.RegArg(asm.EAX)}, {Arg: asm.ImmArg(42)}}},
				{Mnemonic: "jne", Ops: []asm.Operand{asm.OffsetOp(asm.SymLabel, "L2")}},
			}, Succs: []int{1, 2}},
			{Index: 1, Addr: 0x100a, Insts: []asm.Inst{
				{Mnemonic: "ret"},
			}},
			{Index: 2, Addr: 0x100b, Insts: []asm.Inst{
				{Mnemonic: "call", Ops: []asm.Operand{asm.SymOp(asm.SymFunc, "helper")}},
				{Mnemonic: "jmp", Ops: []asm.Operand{asm.OffsetOp(asm.SymLabel, "L1")}},
			}, Succs: []int{1}},
		},
	}
	add("app.exe", "lib_alpha", &prep.Function{Name: "alpha", Addr: 0x1000, Graph: g1}, []uint64{7, 99, 0xdeadbeef})

	// Entry block that is not block 0, a block with no instructions, and
	// strings shared with the first function.
	g2 := &cfg.Graph{
		Name:  "beta",
		Entry: 1,
		Blocks: []*cfg.Block{
			{Index: 0, Insts: nil, Succs: nil},
			{Index: 1, Insts: []asm.Inst{
				{Mnemonic: "mov", Ops: []asm.Operand{{Arg: asm.RegArg(asm.EAX)}, {Arg: asm.ImmArg(-1)}}},
				{Mnemonic: "ret"},
			}, Succs: []int{0}},
		},
	}
	add("app.exe", "", &prep.Function{Name: "beta", Addr: 0x2000, Graph: g2}, nil)

	g3 := &cfg.Graph{
		Name:  "gamma",
		Entry: 0,
		Blocks: []*cfg.Block{
			{Index: 0, Insts: []asm.Inst{{Mnemonic: "ret"}}},
		},
	}
	add("other.exe", "lib_alpha", &prep.Function{Name: "gamma", Addr: 0x30, Graph: g3}, []uint64{7})
	return
}

func buildFile(t *testing.T) []byte {
	t.Helper()
	exes, fns, truths, feats := handFuncs()
	var buf bytes.Buffer
	n, err := Write(&buf, exes, fns, truths, feats)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	exes, fns, truths, feats := handFuncs()
	data := buildFile(t)
	f, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumFuncs() != len(fns) {
		t.Fatalf("NumFuncs = %d, want %d", f.NumFuncs(), len(fns))
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("Verify on a fresh file: %v", err)
	}
	for i, want := range fns {
		m := f.Meta(i)
		if m.Exe != exes[i] || m.Name != want.Name || m.Truth != truths[i] || m.Addr != want.Addr {
			t.Errorf("func %d meta = %+v", i, m)
		}
		gotFeats := f.Features(i)
		if len(gotFeats) == 0 {
			gotFeats = nil
		}
		if !reflect.DeepEqual(gotFeats, feats[i]) {
			t.Errorf("func %d feats = %v, want %v", i, gotFeats, feats[i])
		}
		got := f.DecodeFunc(i)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("func %d decoded differently:\ngot  %s\nwant %s", i, got.Graph, want.Graph)
		}
	}
	// Section directory must cover the required sections with valid ranges.
	secs := f.Sections()
	if len(secs) != len(requiredSections) {
		t.Fatalf("%d sections, want %d", len(secs), len(requiredSections))
	}
	for _, s := range secs {
		if s.Offset%8 != 0 {
			t.Errorf("section %s misaligned at %d", s.Name, s.Offset)
		}
	}
}

// TestRoundTripCorpus pushes real lifted functions through the format.
func TestRoundTripCorpus(t *testing.T) {
	c, err := corpus.Build(corpus.BuildConfig{
		Seed: 11, ContextCopies: 2, Versions: 1, NoiseExes: 1,
		FuncsPerExe: 3, TargetStmts: 30, FillerStmts: 10, Opt: tinyc.O2,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder()
	var want []*prep.Function
	for _, e := range c.Exes {
		fns, err := prep.LiftImage(e.Image)
		if err != nil {
			t.Fatal(err)
		}
		for _, fn := range fns {
			b.Add(e.Name, fn, e.Truth[fn.Addr], []uint64{uint64(len(want))})
			want = append(want, fn)
		}
	}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumFuncs() != len(want) {
		t.Fatalf("NumFuncs = %d, want %d", f.NumFuncs(), len(want))
	}
	for i, w := range want {
		if got := f.DecodeFunc(i); !reflect.DeepEqual(got, w) {
			t.Fatalf("lifted func %d (%s) decoded differently", i, w.Name)
		}
	}
}

func TestOpenMmap(t *testing.T) {
	data := buildFile(t)
	path := filepath.Join(t.TempDir(), "idx.v3")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Path() != path {
		t.Errorf("Path = %q", f.Path())
	}
	if f.Size() != int64(len(data)) {
		t.Errorf("Size = %d, want %d", f.Size(), len(data))
	}
	if got := f.DecodeFunc(0); got.Name != "alpha" {
		t.Errorf("DecodeFunc(0).Name = %q", got.Name)
	}
	// The feature view aliases the mapping; reading it must work and the
	// string table must not (strings survive Close by construction).
	if fs := f.Features(0); len(fs) != 3 || fs[2] != 0xdeadbeef {
		t.Errorf("Features(0) = %v", fs)
	}
	if err := f.Verify(); err != nil {
		t.Error(err)
	}
	if !f.Mapped() {
		t.Skip("platform without mmap fast path")
	}
}

func TestSniffVersion(t *testing.T) {
	data := buildFile(t)
	if v := SniffVersion(data[:16]); v != 3 {
		t.Errorf("SniffVersion(v3 file) = %d", v)
	}
	if v := SniffVersion([]byte("TRACYIDX\x02garbage")); v != 2 {
		t.Errorf("SniffVersion(v2 prelude) = %d", v)
	}
	if v := SniffVersion([]byte("not an index file")); v != 0 {
		t.Errorf("SniffVersion(garbage) = %d", v)
	}
	if v := SniffVersion([]byte("short")); v != 0 {
		t.Errorf("SniffVersion(short) = %d", v)
	}
}

// flip returns a copy of data with a mutation applied.
func flip(data []byte, mutate func(b []byte)) []byte {
	b := append([]byte(nil), data...)
	mutate(b)
	return b
}

// fixDirCRC recomputes the directory checksum so mutations inside
// section payload bounds reach the structural validators rather than
// being caught by the directory hash.
func fixDirCRC(b []byte) {
	nsec := binary.LittleEndian.Uint32(b[12:])
	dir := b[headerSize : headerSize+int(nsec)*dirEntrySize]
	binary.LittleEndian.PutUint32(b[32:], crc32.Checksum(dir, crcTable))
}

func TestParseRejectsCorruption(t *testing.T) {
	data := buildFile(t)
	if _, err := Parse(data); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}

	// Locate the FUNC section so mutations can target real records.
	f, _ := Parse(data)
	var funcSec SectionInfo
	for _, s := range f.Sections() {
		if s.Name == SecFUNC {
			funcSec = s
		}
	}

	cases := []struct {
		name   string
		mutate func(b []byte)
	}{
		{"bad magic", func(b []byte) { b[0] = 'X' }},
		{"bad version", func(b []byte) { b[8] = 9 }},
		{"file size mismatch", func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 1<<40) }},
		{"zero sections", func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 0) }},
		{"huge section count", func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 1<<30) }},
		{"function count lies", func(b []byte) { binary.LittleEndian.PutUint64(b[24:], 1) }},
		{"directory bit flip", func(b []byte) { b[headerSize+8] ^= 1 }},
		{"section overruns file", func(b []byte) {
			binary.LittleEndian.PutUint64(b[headerSize+8:], uint64(len(b)))
			binary.LittleEndian.PutUint64(b[headerSize+16:], 64)
			fixDirCRC(b)
		}},
		{"section misaligned", func(b []byte) {
			off := binary.LittleEndian.Uint64(b[headerSize+8:])
			binary.LittleEndian.PutUint64(b[headerSize+8:], off+1)
			fixDirCRC(b)
		}},
		{"duplicate section id", func(b []byte) {
			copy(b[headerSize+dirEntrySize:], b[headerSize:headerSize+4])
			fixDirCRC(b)
		}},
		{"string id out of range", func(b []byte) {
			binary.LittleEndian.PutUint32(b[funcSec.Offset+4:], 1<<30) // name field
		}},
		{"entry block out of range", func(b []byte) {
			binary.LittleEndian.PutUint32(b[funcSec.Offset+16:], 1<<20)
		}},
		{"block range overruns pool", func(b []byte) {
			binary.LittleEndian.PutUint32(b[funcSec.Offset+24:], 1<<20) // nblocks
		}},
		{"feature range overruns pool", func(b []byte) {
			binary.LittleEndian.PutUint32(b[funcSec.Offset+28:], 1<<20) // featOff
		}},
		{"zero blocks", func(b []byte) {
			binary.LittleEndian.PutUint32(b[funcSec.Offset+24:], 0)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := flip(data, tc.mutate)
			if _, err := Parse(mut); err == nil {
				t.Fatal("corrupt file accepted")
			} else if !IsCorrupt(err) {
				t.Fatalf("want corruptError, got %T: %v", err, err)
			}
		})
	}

	// Truncation at every boundary the parser cares about.
	for _, n := range []int{0, 7, headerSize - 1, headerSize, headerSize + 5, len(data) - 1} {
		if _, err := Parse(data[:n]); err == nil {
			t.Errorf("accepted %d-byte truncation", n)
		}
	}
}

func TestVerifyCatchesPayloadFlip(t *testing.T) {
	data := buildFile(t)
	f, _ := Parse(data)
	var strb SectionInfo
	for _, s := range f.Sections() {
		if s.Name == SecSTRB {
			strb = s
		}
	}
	mut := flip(data, func(b []byte) { b[strb.Offset] ^= 0x40 })
	// A payload flip inside string bytes is structurally fine...
	f2, err := Parse(mut)
	if err != nil {
		t.Fatalf("structural parse should pass: %v", err)
	}
	// ...but the checksum pass must catch it.
	if err := f2.Verify(); err == nil {
		t.Fatal("Verify missed a payload corruption")
	}
}

func TestBuilderRejectsBadGraphs(t *testing.T) {
	cases := []*prep.Function{
		{Name: "nil-graph"},
		{Name: "no-blocks", Graph: &cfg.Graph{}},
		{Name: "entry-oob", Graph: &cfg.Graph{Entry: 5, Blocks: []*cfg.Block{{}}}},
		{Name: "succ-oob", Graph: &cfg.Graph{Blocks: []*cfg.Block{{Succs: []int{9}}}}},
	}
	for _, fn := range cases {
		b := NewBuilder()
		b.Add("x", fn, "", nil)
		if _, err := b.WriteTo(&bytes.Buffer{}); err == nil {
			t.Errorf("%s: builder accepted malformed graph", fn.Name)
		}
	}
}

func TestEmptyBuilder(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewBuilder().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumFuncs() != 0 {
		t.Fatalf("NumFuncs = %d", f.NumFuncs())
	}
}
