package cfg

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/x86"
)

func buildListing(t *testing.T, src string) *Graph {
	t.Helper()
	insts, labels, err := asm.ParseListing(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildListing("test", insts, labels)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLinearFunction(t *testing.T) {
	g := buildListing(t, `
		push ebp
		mov ebp, esp
		mov eax, 1
		pop ebp
		retn
	`)
	if len(g.Blocks) != 1 {
		t.Fatalf("got %d blocks, want 1", len(g.Blocks))
	}
	if len(g.Blocks[0].Succs) != 0 {
		t.Errorf("ret block has successors %v", g.Blocks[0].Succs)
	}
	if len(g.Blocks[0].Insts) != 5 {
		t.Errorf("block has %d instructions, want 5", len(g.Blocks[0].Insts))
	}
}

func TestIfThenElse(t *testing.T) {
	g := buildListing(t, `
		cmp eax, 1
		jnz elseb
		mov ebx, 1
		jmp done
	elseb:
		mov ebx, 2
	done:
		retn
	`)
	// Blocks: 0 (cmp,jnz), 1 (mov,jmp), 2 (mov), 3 (ret).
	if len(g.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4:\n%s", len(g.Blocks), g)
	}
	succ := func(i int) []int { return g.Blocks[i].Succs }
	if got := succ(0); len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Errorf("block 0 succs %v, want [2 1]", got)
	}
	if got := succ(1); len(got) != 1 || got[0] != 3 {
		t.Errorf("block 1 succs %v, want [3]", got)
	}
	if got := succ(2); len(got) != 1 || got[0] != 3 {
		t.Errorf("block 2 succs %v, want [3]", got)
	}
	if got := succ(3); len(got) != 0 {
		t.Errorf("block 3 succs %v, want []", got)
	}
}

func TestLoop(t *testing.T) {
	g := buildListing(t, `
		mov ecx, 0
	top:
		inc ecx
		cmp ecx, 0Ah
		jl top
		retn
	`)
	// Blocks: 0 (mov), 1 (inc,cmp,jl), 2 (ret).
	if len(g.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3:\n%s", len(g.Blocks), g)
	}
	s := g.Blocks[1].Succs
	if len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Errorf("loop block succs %v, want [1 2] (back edge first)", s)
	}
}

func TestBodyStripsJump(t *testing.T) {
	g := buildListing(t, `
		cmp eax, 1
		jz out
		mov ebx, 2
	out:
		retn
	`)
	b0 := g.Blocks[0]
	if n := len(b0.Insts); n != 2 {
		t.Fatalf("block 0 has %d insts", n)
	}
	body := b0.Body()
	if len(body) != 1 || body[0].Mnemonic != "cmp" {
		t.Errorf("Body() = %v, want [cmp]", body)
	}
	// Ret must NOT be stripped: only jumps are.
	last := g.Blocks[len(g.Blocks)-1]
	if len(last.Body()) != 1 {
		t.Errorf("ret should not be stripped from body")
	}
}

func TestBuildFromDecoded(t *testing.T) {
	insts, labels, err := asm.ParseListing(`
		cmp eax, 1
		jnz elseb
		mov ebx, 1
		jmp done
	elseb:
		mov ebx, 2
	done:
		retn
	`)
	if err != nil {
		t.Fatal(err)
	}
	code, _, err := x86.AssembleFunc(insts, labels)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := x86.DecodeAll(code, 0x8048100)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build("bin", dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4:\n%s", len(g.Blocks), g)
	}
	if g.Blocks[0].Addr != 0x8048100 {
		t.Errorf("entry block addr %#x", g.Blocks[0].Addr)
	}
	// Same structure as the listing-built graph.
	if s := g.Blocks[0].Succs; len(s) != 2 {
		t.Errorf("entry succs %v", s)
	}
}

func TestTailJumpOutside(t *testing.T) {
	// A jmp to an address outside the decoded range has no local successor.
	dec := []x86.Decoded{
		{Inst: asm.MustParse("mov eax, 1"), Addr: 0x100, Len: 5},
		{Inst: asm.New("jmp", asm.ImmOp(0x9999)), Addr: 0x105, Len: 5},
	}
	g, err := Build("tail", dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 1 || len(g.Blocks[0].Succs) != 0 {
		t.Errorf("tail-jump function should be one block without successors:\n%s", g)
	}
}

func TestEmptyFunction(t *testing.T) {
	if _, err := Build("x", nil); err == nil {
		t.Error("Build(empty) should fail")
	}
	if _, err := BuildListing("x", nil, nil); err == nil {
		t.Error("BuildListing(empty) should fail")
	}
}

func TestAvgDegrees(t *testing.T) {
	g := buildListing(t, `
		cmp eax, 1
		jnz elseb
		mov ebx, 1
		jmp done
	elseb:
		mov ebx, 2
	done:
		retn
	`)
	in, out := g.AvgDegrees()
	// 4 blocks, edges: 0->2, 0->1, 1->3, 2->3 = 4 edges.
	if want := 1.0; in != want || out != want {
		t.Errorf("AvgDegrees = %v, %v, want %v", in, out, want)
	}
}

func TestGraphString(t *testing.T) {
	g := buildListing(t, "mov eax, 1\nretn")
	s := g.String()
	if !strings.Contains(s, "block 0") || !strings.Contains(s, "mov eax, 1") {
		t.Errorf("String() missing content:\n%s", s)
	}
}

func TestNumInsts(t *testing.T) {
	g := buildListing(t, `
		cmp eax, 1
		jz done
		inc eax
	done:
		retn
	`)
	if got := g.NumInsts(); got != 4 {
		t.Errorf("NumInsts = %d, want 4", got)
	}
}

func TestDot(t *testing.T) {
	g := buildListing(t, `
		cmp eax, 1
		jz done
		inc eax
	done:
		retn
	`)
	dot := g.Dot()
	for _, want := range []string{"digraph", "n0 -> n", "cmp eax, 1", "shape=box"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot() missing %q:\n%s", want, dot)
		}
	}
}
