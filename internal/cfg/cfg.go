// Package cfg builds control-flow graphs of basic blocks from instruction
// sequences, in both decoded-binary form (jump targets are absolute
// addresses) and listing form (jump targets are labels).
//
// A basic block is a sequence of instructions with a single entry point and
// at most one exit jump at the end (paper Section 3).
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/x86"
)

// Block is one basic block.
type Block struct {
	Index int
	Addr  uint32     // address of the first instruction (0 in listing form)
	Insts []asm.Inst // including the terminating jump, if any
	Succs []int      // indices of successor blocks, in CFG order
}

// Body returns the block's instructions without the trailing jump — the
// StripJumps helper of paper Algorithm 2. Calls are kept: only jumps are
// control-flow artifacts of layout.
func (b *Block) Body() []asm.Inst {
	if n := len(b.Insts); n > 0 && b.Insts[n-1].IsJump() {
		return b.Insts[:n-1]
	}
	return b.Insts
}

// Graph is a function's control-flow graph.
type Graph struct {
	Name   string
	Blocks []*Block
	Entry  int
}

// NumInsts returns the total instruction count over all blocks.
func (g *Graph) NumInsts() int {
	n := 0
	for _, b := range g.Blocks {
		n += len(b.Insts)
	}
	return n
}

// String renders the graph as a numbered block listing with successor
// arrows, for debugging and the disasm tool.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "block %d", b.Index)
		if b.Addr != 0 {
			fmt.Fprintf(&sb, " @ %#x", b.Addr)
		}
		if len(b.Succs) > 0 {
			fmt.Fprintf(&sb, " -> %v", b.Succs)
		}
		sb.WriteString(":\n")
		for _, in := range b.Insts {
			fmt.Fprintf(&sb, "\t%s\n", in)
		}
	}
	return sb.String()
}

// Dot renders the graph in Graphviz DOT syntax, with instruction listings
// as node labels.
func (g *Graph) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n\tnode [shape=box, fontname=\"monospace\"];\n", g.Name)
	for _, b := range g.Blocks {
		var lines []string
		for _, in := range b.Insts {
			lines = append(lines, in.String())
		}
		label := fmt.Sprintf("block %d\\l", b.Index) + strings.Join(lines, "\\l") + "\\l"
		fmt.Fprintf(&sb, "\tn%d [label=%q];\n", b.Index, label)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, "\tn%d -> n%d;\n", b.Index, s)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// TableReader resolves an indirect-jump table: given the absolute address
// of a jump table, it returns the code addresses stored there (typically by
// reading .rodata until an entry leaves the function), or nil when the
// address is not a recognizable table.
type TableReader func(tableAddr uint32) []uint32

// Build constructs a CFG from decoded binary instructions. Jump targets are
// absolute-address immediates; targets outside the function are treated as
// having no local successor (tail jumps).
func Build(name string, dec []x86.Decoded) (*Graph, error) {
	return BuildWithTables(name, dec, nil)
}

// BuildWithTables is Build with jump-table recovery: an indirect jump of
// the form jmp [table+reg*4] consults readTable for its successor set, the
// way real-world disassemblers recover switch statements.
func BuildWithTables(name string, dec []x86.Decoded, readTable TableReader) (*Graph, error) {
	if len(dec) == 0 {
		return nil, fmt.Errorf("cfg: empty function %s", name)
	}
	addrIndex := make(map[uint32]int, len(dec))
	for i, d := range dec {
		addrIndex[d.Addr] = i
	}
	targets := func(i int) []int {
		in := dec[i].Inst
		if len(in.Ops) != 1 {
			return nil
		}
		op := in.Ops[0]
		if !op.IsMem() {
			if !op.Arg.IsImm() {
				return nil
			}
			if ti, ok := addrIndex[uint32(op.Arg.Imm)]; ok {
				return []int{ti}
			}
			return nil
		}
		// Indirect jump: recover [table+reg*4].
		if readTable == nil || in.Mnemonic != "jmp" {
			return nil
		}
		tbl, ok := jumpTableAddr(op)
		if !ok {
			return nil
		}
		var out []int
		for _, addr := range readTable(tbl) {
			if ti, ok := addrIndex[addr]; ok {
				out = append(out, ti)
			}
		}
		return out
	}
	insts := make([]asm.Inst, len(dec))
	addrs := make([]uint32, len(dec))
	for i, d := range dec {
		insts[i] = d.Inst
		addrs[i] = d.Addr
	}
	return build(name, insts, addrs, targets)
}

// jumpTableAddr recognizes the memory-operand shape of a jump table
// dispatch ([imm+reg*4]) and returns the table's base address.
func jumpTableAddr(op asm.Operand) (uint32, bool) {
	var base int64 = -1
	scaled := false
	terms := op.Mem
	for i := 0; i < len(terms); i++ {
		t := terms[i]
		if i+1 < len(terms) && terms[i+1].Op == asm.OpMul {
			if t.Arg.IsReg() && terms[i+1].Arg.IsImm() && terms[i+1].Arg.Imm == 4 {
				scaled = true
			}
			i++
			continue
		}
		if t.Arg.IsImm() && t.Op == asm.OpAdd {
			base = t.Arg.Imm
		}
	}
	if base < 0 || !scaled {
		return 0, false
	}
	return uint32(base), true
}

// BuildListing constructs a CFG from a parsed listing whose jump targets
// are label symbols resolved through labels (label name -> instruction
// index).
func BuildListing(name string, insts []asm.Inst, labels map[string]int) (*Graph, error) {
	if len(insts) == 0 {
		return nil, fmt.Errorf("cfg: empty function %s", name)
	}
	targets := func(i int) []int {
		in := insts[i]
		if len(in.Ops) != 1 || in.Ops[0].IsMem() || !in.Ops[0].Arg.IsSym() {
			return nil
		}
		ti, ok := labels[in.Ops[0].Arg.Sym]
		if !ok || ti >= len(insts) {
			return nil
		}
		return []int{ti}
	}
	return build(name, insts, nil, targets)
}

func build(name string, insts []asm.Inst, addrs []uint32, targets func(int) []int) (*Graph, error) {
	n := len(insts)
	leaders := map[int]bool{0: true}
	for i, in := range insts {
		if !in.Terminates() {
			continue
		}
		if i+1 < n {
			leaders[i+1] = true
		}
		if in.IsJump() {
			for _, ti := range targets(i) {
				leaders[ti] = true
			}
		}
	}
	starts := make([]int, 0, len(leaders))
	for i := range leaders {
		starts = append(starts, i)
	}
	sort.Ints(starts)
	blockOf := make([]int, n)
	g := &Graph{Name: name}
	for bi, s := range starts {
		end := n
		if bi+1 < len(starts) {
			end = starts[bi+1]
		}
		b := &Block{Index: bi, Insts: insts[s:end]}
		if addrs != nil {
			b.Addr = addrs[s]
		}
		g.Blocks = append(g.Blocks, b)
		for i := s; i < end; i++ {
			blockOf[i] = bi
		}
	}
	for bi := range starts {
		end := n
		if bi+1 < len(starts) {
			end = starts[bi+1]
		}
		last := insts[end-1]
		b := g.Blocks[bi]
		switch {
		case last.IsRet():
			// no successors
		case last.IsJump():
			seen := map[int]bool{}
			for _, ti := range targets(end - 1) {
				if !seen[blockOf[ti]] {
					seen[blockOf[ti]] = true
					b.Succs = append(b.Succs, blockOf[ti])
				}
			}
			if last.IsCondJump() && end < n && !seen[blockOf[end]] {
				b.Succs = append(b.Succs, blockOf[end])
			}
		default:
			if end < n {
				b.Succs = append(b.Succs, blockOf[end])
			}
		}
	}
	return g, nil
}

// AvgDegrees returns the average in-degree and out-degree over all blocks,
// the statistic reported alongside paper Table 1.
func (g *Graph) AvgDegrees() (in, out float64) {
	if len(g.Blocks) == 0 {
		return 0, 0
	}
	indeg := make([]int, len(g.Blocks))
	total := 0
	for _, b := range g.Blocks {
		total += len(b.Succs)
		for _, s := range b.Succs {
			indeg[s]++
		}
	}
	sumIn := 0
	for _, d := range indeg {
		sumIn += d
	}
	n := float64(len(g.Blocks))
	return float64(sumIn) / n, float64(total) / n
}
