package index

import (
	"bytes"
	"testing"

	"repro/internal/corpus"
)

// FuzzIndexLoad throws arbitrary bytes at the gob index deserializer:
// it must reject garbage with an error, never panic, and never crash on
// truncations or bit-flips of a genuine index. A loaded index must be
// internally consistent enough to decompose.
func FuzzIndexLoad(f *testing.F) {
	// A genuine saved index as the prime seed, so the fuzzer mutates real
	// structure instead of guessing the format from scratch.
	cp, err := corpus.Build(corpus.BuildConfig{
		Seed: 1, ContextCopies: 1, NoiseExes: 1, FuncsPerExe: 1,
		TargetStmts: 10, FillerStmts: 8,
	})
	if err != nil {
		f.Fatal(err)
	}
	db := New()
	for _, e := range cp.Exes {
		if err := db.AddImage(e.Name, e.Image, e.Truth); err != nil {
			f.Fatal(err)
		}
	}
	var saved bytes.Buffer
	if err := db.Save(&saved); err != nil {
		f.Fatal(err)
	}
	f.Add(saved.Bytes())
	f.Add(saved.Bytes()[:saved.Len()/2])
	var savedV3 bytes.Buffer
	if err := db.SaveV3(&savedV3); err != nil {
		f.Fatal(err)
	}
	f.Add(savedV3.Bytes())
	f.Add(savedV3.Bytes()[:savedV3.Len()/2])
	f.Add([]byte("TRACYIDX"))
	f.Add([]byte("TRACYIDX\x01\x00\x00\x00garbage"))
	f.Add([]byte("TRACYIDX\x03\x00\x00\x00garbage"))
	f.Add([]byte{})
	f.Add([]byte("not an index at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Gob can legally encode huge allocations in few bytes; bound the
		// input so the fuzzer explores structure, not allocation size.
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, e := range loaded.Entries {
			if e == nil || e.Function() == nil {
				t.Fatal("Load accepted an index with nil entries")
			}
		}
		// A successfully loaded index must survive decomposition.
		_ = loaded.Decomposed(3)
	})
}
