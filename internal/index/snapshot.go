package index

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/idxfile"
	"repro/internal/minhash"
	"repro/internal/prep"
	"repro/internal/telemetry"
)

// Snapshot is an immutable, sharded view of a DB prepared for serving:
// every entry is pre-decomposed for each supported tracelet size k and
// the corpus is split into contiguous shards, so one query fans out
// across the shards (intra-query parallelism) while any number of
// queries run concurrently against the same snapshot without locking.
// Swapping in a new corpus is an atomic pointer swap in the caller
// (see internal/server); an old snapshot stays valid for in-flight
// queries until they finish.
type Snapshot struct {
	entries []*Entry
	ks      []int
	shards  []snapShard
	byName  map[string]*Entry // exe + "\x00" + name -> entry
	fidx    *featureIndex
	info    Info

	// lsh candidate generation: built lazily on the first ModeLSH query
	// so cold start stays unchanged for scan-only serving. store (the v3
	// backing file, nil for gob) supplies persisted signatures; feats is
	// retained only for storeless snapshots, where signatures are hashed
	// from the feature sets under minhash.Default instead. A store
	// without an LSHB section yields lsh == nil after the Once — queries
	// then fall back to the scan prefilter (counted as lsh_fallbacks)
	// rather than re-deriving signatures from a million mmapped feature
	// slices.
	store   *idxfile.File
	feats   [][]uint64
	lshOnce sync.Once
	lsh     *lshIndex

	// Exactly one of flat/lazy is non-nil per supported k. flat holds the
	// eager pre-decompositions of a gob-backed DB; lazy holds memoization
	// slots for a v3 store-backed DB, where entries decode + decompose on
	// first touch (so cold start and resident memory scale with the pages
	// queries actually visit, not the corpus).
	flat map[int][]*core.Decomposed
	lazy map[int][]atomic.Pointer[core.Decomposed]

	// Tel is the default collector for Search when opts.Tel is nil.
	Tel *telemetry.Collector
}

// snapShard is a contiguous entry range [lo, hi).
type snapShard struct {
	lo, hi int
}

// dec returns the k-decomposition of entry i, computing and memoizing it
// on first touch in lazy mode. Concurrent first calls may both compute
// but agree on one winner via CAS.
func (s *Snapshot) dec(k, i int) *core.Decomposed {
	if s.flat != nil {
		return s.flat[k][i]
	}
	slot := &s.lazy[k][i]
	if d := slot.Load(); d != nil {
		return d
	}
	d := core.DecomposeT(s.entries[i].Function(), k, s.Tel)
	if slot.CompareAndSwap(nil, d) {
		return d
	}
	return slot.Load()
}

// BuildSnapshot decomposes every entry of db for each tracelet size in ks
// (deduplicated; defaults to [3] when empty) and splits the corpus into
// nShards contiguous shards (<= 0 means runtime.GOMAXPROCS(0)). The
// decomposition work itself runs in parallel across entries. The DB is
// only read; the snapshot holds its own decompositions and shares the
// (immutable) entries.
func BuildSnapshot(db *DB, ks []int, nShards int) *Snapshot {
	uniq := make(map[int]bool)
	var kept []int
	for _, k := range ks {
		if k > 0 && !uniq[k] {
			uniq[k] = true
			kept = append(kept, k)
		}
	}
	if len(kept) == 0 {
		kept = []int{3}
	}
	sort.Ints(kept)

	n := len(db.Entries)
	if nShards <= 0 {
		nShards = runtime.GOMAXPROCS(0)
	}
	if nShards > n {
		nShards = n
	}
	if nShards < 1 {
		nShards = 1
	}

	s := &Snapshot{
		entries: db.Entries,
		ks:      kept,
		byName:  make(map[string]*Entry, n),
		info:    db.Info(),
		Tel:     db.Tel,
	}
	for _, e := range db.Entries {
		s.byName[entryKey(e.Exe, e.Name)] = e
	}

	if db.store != nil {
		// Store-backed: allocate memoization slots only. Decode +
		// decomposition happen per entry on first query touch, which is
		// what keeps v3 cold start and RSS page-granular.
		s.lazy = make(map[int][]atomic.Pointer[core.Decomposed], len(kept))
		for _, k := range kept {
			s.lazy[k] = make([]atomic.Pointer[core.Decomposed], n)
		}
	} else {
		// Gob-backed: the whole object graph is already on the heap;
		// decompose all (entry, k) pairs up front with a worker pool so
		// serving never pays decomposition latency.
		all := make(map[int][]*core.Decomposed, len(kept))
		for _, k := range kept {
			all[k] = make([]*core.Decomposed, n)
		}
		type job struct{ k, i int }
		jobs := make(chan job)
		var wg sync.WaitGroup
		for w := 0; w < runtime.GOMAXPROCS(0); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					all[j.k][j.i] = core.DecomposeT(db.Entries[j.i].Function(), j.k, db.Tel)
				}
			}()
		}
		for _, k := range kept {
			for i := 0; i < n; i++ {
				jobs <- job{k, i}
			}
		}
		close(jobs)
		wg.Wait()
		s.flat = all
	}

	// Slice the corpus into near-equal contiguous shards.
	for sh := 0; sh < nShards; sh++ {
		s.shards = append(s.shards, snapShard{lo: sh * n / nShards, hi: (sh + 1) * n / nShards})
	}
	// The feature index is snapshot-resident: built once here (reusing
	// features deserialized from a v2 file, or feature-pool views of a v3
	// mapping), then read lock-free by any number of prefiltered queries.
	feats := db.features()
	s.fidx = buildFeatureIndex(feats)
	s.store = db.store
	if db.store == nil {
		s.feats = feats
	}
	return s
}

// lshIdx returns the snapshot's banded MinHash index, building it on
// first use: from the v3 file's persisted LSHB signatures when present,
// from freshly hashed feature sets for in-memory corpora. It returns
// nil — callers fall back to scan — for a store-backed snapshot whose
// file predates the LSHB section.
func (s *Snapshot) lshIdx() *lshIndex {
	s.lshOnce.Do(func() {
		if s.store != nil {
			s.lsh = lshFromStore(s.store, s.Tel)
		} else if s.feats != nil {
			s.lsh = lshFromFeatures(minhash.Default, s.feats, s.Tel)
		}
	})
	return s.lsh
}

// Info returns the provenance of the index this snapshot serves.
func (s *Snapshot) Info() Info { return s.info }

func entryKey(exe, name string) string { return exe + "\x00" + name }

// Len returns the number of indexed functions.
func (s *Snapshot) Len() int { return len(s.entries) }

// Entries returns the snapshot's entries. The slice and its entries are
// shared and must be treated as read-only.
func (s *Snapshot) Entries() []*Entry { return s.entries }

// Ks returns the tracelet sizes the snapshot has precomputed.
func (s *Snapshot) Ks() []int { return s.ks }

// NumShards returns the shard count.
func (s *Snapshot) NumShards() int { return len(s.shards) }

// SupportsK reports whether queries with tracelet size k can be served
// from the precomputed decompositions.
func (s *Snapshot) SupportsK(k int) bool {
	for _, have := range s.ks {
		if have == k {
			return true
		}
	}
	return false
}

// Lookup returns the indexed entry for (exe, name), or nil.
func (s *Snapshot) Lookup(exe, name string) *Entry {
	return s.byName[entryKey(exe, name)]
}

// noteCtxErr counts a context-aborted search into tel: one tick of
// SearchesDeadline for an expired deadline, SearchesCancelled for an
// explicit cancel. Non-context errors are not counted.
func noteCtxErr(tel *telemetry.Collector, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		tel.Inc(telemetry.SearchesDeadline)
	case errors.Is(err, context.Canceled):
		tel.Inc(telemetry.SearchesCancelled)
	}
}

// Search decomposes the query and runs SearchDecomposed.
func (s *Snapshot) Search(query *prep.Function, opts core.Options) ([]Hit, error) {
	return s.SearchCtx(context.Background(), query, opts)
}

// SearchCtx is Search bounded by ctx: decomposition runs to completion
// (it is cheap and uncancellable), then the exact comparison honors ctx.
func (s *Snapshot) SearchCtx(ctx context.Context, query *prep.Function, opts core.Options) ([]Hit, error) {
	if opts.Tel == nil {
		opts.Tel = s.Tel
	}
	k := opts.K
	if k <= 0 {
		k = 3
	}
	return s.SearchDecomposedCtx(ctx, core.DecomposeT(query, k, opts.Tel), opts, PrefilterOptions{})
}

// SearchDecomposed compares an already-decomposed query against every
// entry, fanning one goroutine out per shard, and returns all hits in
// canonical order — hit for hit identical to DB.Search over the same
// corpus and options. It errors if ref.K is not a precomputed tracelet
// size. Safe for any number of concurrent callers.
func (s *Snapshot) SearchDecomposed(ref *core.Decomposed, opts core.Options) ([]Hit, error) {
	return s.SearchDecomposedCtx(context.Background(), ref, opts, PrefilterOptions{})
}

// SearchDecomposedWith is SearchDecomposed with an explicit prefilter
// stage: when pf enables it, the snapshot's feature index ranks the
// corpus by shared features and only the top-C candidates are compared
// exactly (fanned across shard-sized worker goroutines). The zero
// PrefilterOptions makes it identical to SearchDecomposed.
func (s *Snapshot) SearchDecomposedWith(ref *core.Decomposed, opts core.Options, pf PrefilterOptions) ([]Hit, error) {
	return s.SearchDecomposedCtx(context.Background(), ref, opts, pf)
}

// SearchDecomposedCtx is SearchDecomposedWith bounded by ctx: the shard
// (or candidate-pool) workers check it cooperatively inside the pair
// loop and the whole search returns ctx.Err() — with nil hits — as soon
// as every worker has noticed the abort. Cancelled and deadline-expired
// searches are counted separately in telemetry. A Background (or nil)
// context adds no overhead and leaves results bit-identical to
// SearchDecomposedWith.
func (s *Snapshot) SearchDecomposedCtx(ctx context.Context, ref *core.Decomposed, opts core.Options, pf PrefilterOptions) ([]Hit, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Tel == nil {
		opts.Tel = s.Tel
	}
	if !s.SupportsK(ref.K) {
		return nil, fmt.Errorf("index: snapshot has no k=%d decomposition (supported: %v)", ref.K, s.ks)
	}
	tel := opts.Tel
	tel.Inc(telemetry.Queries)
	qt := tel.StartTimer(telemetry.QueryLatency)
	sp := telemetry.SpanFromContext(ctx)

	var (
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		if err == nil {
			return
		}
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	if c := pf.cap(); c > 0 {
		pfSpan := sp.Child("prefilter")
		pt := tel.StartTimer(telemetry.PrefilterLatency)
		var ids []int32
		if pf.Mode == ModeLSH {
			if x := s.lshIdx(); x != nil {
				tel.Inc(telemetry.LSHQueries)
				ids = x.topCandidates(ctx, QueryFeatures(ref), c, tel)
				tel.Add(telemetry.LSHCandidates, uint64(len(ids)))
				pfSpan.Set("lsh", 1)
			} else {
				// No signatures to serve from (pre-LSHB v3 file): degrade
				// to the scan prefilter rather than fail the search.
				tel.Inc(telemetry.LSHFallbacks)
				ids = s.fidx.topCandidates(ctx, QueryFeatures(ref), c)
			}
		} else {
			ids = s.fidx.topCandidates(ctx, QueryFeatures(ref), c)
		}
		pt.Stop()
		pfSpan.Set("candidates", int64(len(ids)))
		pfSpan.End()
		if err := ctx.Err(); err != nil {
			noteCtxErr(tel, err)
			qt.Stop()
			return nil, err
		}
		tel.Add(telemetry.PrefilterCandidates, uint64(len(ids)))
		hits := make([]Hit, len(ids))
		cmpSpan := sp.Child("compare")
		cmpSpan.Set("pairs", int64(len(ids)))
		workers := len(s.shards)
		if workers > len(ids) {
			workers = len(ids)
		}
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m := core.NewMatcher(opts)
				for i := range jobs {
					id := ids[i]
					res, err := m.CompareCtx(ctx, ref, s.dec(ref.K, int(id)))
					if err != nil {
						setErr(err)
						continue // keep draining jobs; remaining compares abort instantly
					}
					hits[i] = Hit{Entry: s.entries[id], Result: res}
				}
			}()
		}
		for i := range ids {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		cmpSpan.End()
		if firstErr != nil {
			noteCtxErr(tel, firstErr)
			qt.Stop()
			return nil, firstErr
		}
		spanNotePrune(sp, hits)
		SortHits(hits)
		qt.Stop()
		return hits, nil
	}

	hits := make([]Hit, len(s.entries))
	cmpSpan := sp.Child("compare")
	cmpSpan.Set("pairs", int64(len(s.entries)))
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh snapShard) {
			defer wg.Done()
			// Each shard scans serially with its own matcher: cross-shard
			// fan-out is the query's parallelism, and independent matchers
			// keep block-alignment caches core-local.
			m := core.NewMatcher(opts)
			for j := sh.lo; j < sh.hi; j++ {
				res, err := m.CompareCtx(ctx, ref, s.dec(ref.K, j))
				if err != nil {
					setErr(err)
					return
				}
				hits[j] = Hit{Entry: s.entries[j], Result: res}
			}
		}(sh)
	}
	wg.Wait()
	cmpSpan.End()
	if firstErr != nil {
		noteCtxErr(tel, firstErr)
		qt.Stop()
		return nil, firstErr
	}
	spanNotePrune(sp, hits)
	SortHits(hits)
	qt.Stop()
	return hits, nil
}

// spanNotePrune attaches the "prune" stage to a request span. Pruning
// happens inside the DP comparisons rather than as a separable timed
// phase, so the stage is an instant span carrying the total pair count
// the score-bound pruner skipped across all hits.
func spanNotePrune(sp *telemetry.Span, hits []Hit) {
	if sp == nil {
		return
	}
	var pruned int64
	for i := range hits {
		pruned += int64(hits[i].Result.PairsPruned)
	}
	c := sp.Child("prune")
	c.Set("pairs_pruned", pruned)
	c.End()
}

// PrefilterRank is the lossy stage alone: it ranks the corpus by shared
// prefilter features with the query and returns the top limit entries
// with their shared-feature counts, running no exact comparison at all.
// This is the degraded-mode answer path — orders of magnitude cheaper
// than a real search and still honoring ctx. limit <= 0 means
// DefaultPrefilterCandidates.
func (s *Snapshot) PrefilterRank(ctx context.Context, ref *core.Decomposed, limit int) ([]Ranked, error) {
	return s.PrefilterRankWith(ctx, ref, limit, ModeScan)
}

// PrefilterRankWith is PrefilterRank with an explicit candidate
// generator. ModeLSH ranks by estimated Jaccard (Shared = matching
// signature positions out of k) from band-bucket collisions, falling
// back to the scan ranking — with a counted lsh_fallbacks event — when
// the snapshot has no signatures to serve from.
func (s *Snapshot) PrefilterRankWith(ctx context.Context, ref *core.Decomposed, limit int, mode PrefilterMode) ([]Ranked, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if limit <= 0 {
		limit = DefaultPrefilterCandidates
	}
	pfSpan := telemetry.SpanFromContext(ctx).Child("prefilter")
	pt := s.Tel.StartTimer(telemetry.PrefilterLatency)
	var ranked []Ranked
	if mode == ModeLSH {
		if x := s.lshIdx(); x != nil {
			s.Tel.Inc(telemetry.LSHQueries)
			ranked = x.ranked(ctx, QueryFeatures(ref), limit, s.Tel)
			s.Tel.Add(telemetry.LSHCandidates, uint64(len(ranked)))
			pfSpan.Set("lsh", 1)
		} else {
			s.Tel.Inc(telemetry.LSHFallbacks)
			ranked = s.fidx.ranked(ctx, QueryFeatures(ref), limit)
		}
	} else {
		ranked = s.fidx.ranked(ctx, QueryFeatures(ref), limit)
	}
	pt.Stop()
	pfSpan.Set("candidates", int64(len(ranked)))
	pfSpan.End()
	if err := ctx.Err(); err != nil {
		noteCtxErr(s.Tel, err)
		return nil, err
	}
	return ranked, nil
}
