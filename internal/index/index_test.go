package index

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/prep"
	"repro/internal/telemetry"
	"repro/internal/tinyc"
)

// buildTestDB builds a small corpus and indexes it.
func buildTestDB(t *testing.T) (*DB, *corpus.Corpus) {
	t.Helper()
	c, err := corpus.Build(corpus.BuildConfig{
		Seed:          3,
		ContextCopies: 3,
		Versions:      2,
		NoiseExes:     2,
		FuncsPerExe:   3,
		TargetStmts:   40,
		FillerStmts:   15,
		Opt:           tinyc.O2,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := New()
	for _, e := range c.Exes {
		if err := db.AddImage(e.Name, e.Image, e.Truth); err != nil {
			t.Fatal(err)
		}
	}
	return db, c
}

// queryFor lifts the planted query function out of one corpus executable.
func queryFor(t *testing.T, db *DB, truthName string) *prep.Function {
	t.Helper()
	for _, e := range db.Entries {
		if e.Truth == truthName {
			return e.Func
		}
	}
	t.Fatalf("no entry with truth %q", truthName)
	return nil
}

func TestSearchFindsAllContexts(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	hits := db.Search(query, core.DefaultOptions())
	if len(hits) != db.Len() {
		t.Fatalf("got %d hits, want %d", len(hits), db.Len())
	}
	// The top ContextCopies hits must be the planted library functions.
	for i := 0; i < 3; i++ {
		if hits[i].Entry.Truth != corpus.LibFuncName {
			t.Errorf("hit %d is %q (score %.2f), want %s", i,
				hits[i].Entry.Truth, hits[i].Result.SimilarityScore, corpus.LibFuncName)
		}
		if !hits[i].Result.IsMatch {
			t.Errorf("hit %d not classified as match (score %.2f)", i,
				hits[i].Result.SimilarityScore)
		}
	}
	// Everything else should score clearly below.
	for _, h := range hits[3:] {
		if h.Result.IsMatch {
			t.Errorf("false positive: %s/%s scored %.2f", h.Entry.Exe,
				h.Entry.Truth, h.Result.SimilarityScore)
		}
	}
}

func TestSearchFindsVersions(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.AppFuncName)
	hits := db.Search(query, core.DefaultOptions())
	for i := 0; i < 2; i++ {
		if hits[i].Entry.Truth != corpus.AppFuncName {
			t.Errorf("hit %d is %q, want %s (score %.2f)", i, hits[i].Entry.Truth,
				corpus.AppFuncName, hits[i].Result.SimilarityScore)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db, _ := buildTestDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != db.Len() {
		t.Fatalf("loaded %d entries, want %d", db2.Len(), db.Len())
	}
	// Every entry must survive field-for-field, including function bodies.
	for i, e := range db.Entries {
		e2 := db2.Entries[i]
		if e2.Exe != e.Exe || e2.Name != e.Name || e2.Addr != e.Addr || e2.Truth != e.Truth {
			t.Errorf("entry %d metadata changed: %+v vs %+v", i, e2, e)
		}
		if e2.Func == nil {
			t.Fatalf("entry %d lost its function", i)
		}
		if e2.Func.NumBlocks() != e.Func.NumBlocks() {
			t.Errorf("entry %d: %d blocks after load, want %d", i,
				e2.Func.NumBlocks(), e.Func.NumBlocks())
			continue
		}
		for bi, b := range e.Func.Graph.Blocks {
			b2 := e2.Func.Graph.Blocks[bi]
			if len(b2.Insts) != len(b.Insts) {
				t.Errorf("entry %d block %d: %d insts, want %d", i, bi,
					len(b2.Insts), len(b.Insts))
			}
		}
	}
	// The loaded DB must search identically.
	query := queryFor(t, db2, corpus.LibFuncName)
	hits := db2.Search(query, core.DefaultOptions())
	if hits[0].Entry.Truth != corpus.LibFuncName {
		t.Errorf("loaded DB search broken: top hit %q", hits[0].Entry.Truth)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("Load(garbage) should fail")
	}
}

// TestLoadTruncated: a valid gob stream cut off mid-way must produce an
// error, not a silently shortened database.
func TestLoadTruncated(t *testing.T) {
	db, _ := buildTestDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []int{2, 4, 10} {
		cut := full[:len(full)/frac]
		if _, err := Load(bytes.NewReader(cut)); err == nil {
			t.Errorf("Load(first 1/%d of stream) should fail", frac)
		}
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("Load(empty) should fail")
	}
}

// TestSearchRecordsTelemetry: a collector hung on the DB is picked up by
// Search when the options carry none.
func TestSearchRecordsTelemetry(t *testing.T) {
	db, _ := buildTestDB(t)
	db.Tel = telemetry.New()
	query := queryFor(t, db, corpus.LibFuncName)
	hits := db.Search(query, core.DefaultOptions())
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if got := db.Tel.Get(telemetry.Queries); got != 1 {
		t.Errorf("queries = %d, want 1", got)
	}
	if got := db.Tel.Get(telemetry.Compares); got != uint64(db.Len()) {
		t.Errorf("compares = %d, want %d", got, db.Len())
	}
	snap := db.Tel.Snapshot()
	if snap.Histograms["query_latency"].Count != 1 {
		t.Error("query latency not recorded")
	}
	if snap.Histograms["compare_latency"].Count == 0 {
		t.Error("compare latency not recorded")
	}
}

func TestDecomposedCache(t *testing.T) {
	db, _ := buildTestDB(t)
	a := db.Decomposed(3)
	b := db.Decomposed(3)
	if &a[0] != &b[0] {
		t.Error("decomposition not cached")
	}
	c := db.Decomposed(2)
	if len(c) != len(a) {
		t.Error("per-k decompositions misaligned")
	}
}

func TestAddImageInvalidatesCache(t *testing.T) {
	db, c := buildTestDB(t)
	before := len(db.Decomposed(3))
	if err := db.AddImage("again", c.Exes[0].Image, nil); err != nil {
		t.Fatal(err)
	}
	after := len(db.Decomposed(3))
	if after <= before {
		t.Errorf("cache not invalidated: %d -> %d", before, after)
	}
}

func TestAddImageBadData(t *testing.T) {
	db := New()
	if err := db.AddImage("x", []byte("not elf"), nil); err == nil {
		t.Error("AddImage(garbage) should fail")
	}
}

// TestConcurrentSearches runs several searches in parallel on a shared DB
// (the decomposition cache must be safe once built).
func TestConcurrentSearches(t *testing.T) {
	db, _ := buildTestDB(t)
	db.Decomposed(3) // prebuild before sharing
	queries := []*prep.Function{
		queryFor(t, db, corpus.LibFuncName),
		queryFor(t, db, corpus.AppFuncName),
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := queries[i%2]
			hits := db.Search(q, core.DefaultOptions())
			if len(hits) != db.Len() {
				errs <- "wrong hit count"
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
