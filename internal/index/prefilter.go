package index

import (
	"context"
	"sort"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/ngram"
	"repro/internal/prep"
)

// The feature prefilter is the lossy first stage of two-stage search:
// every corpus function is summarized as a set of normalized per-block
// mnemonic-kind k-grams, an inverted index maps each feature to the
// functions carrying it, and a query is answered by ranking functions on
// shared-feature count and running the exact tracelet comparison only on
// the top C. Unlike the package ngram baseline (linear layout windows),
// the grams here are per basic block with block-local renaming, so block
// reordering does not shift them — only genuinely changed blocks lose
// features.

// prefilterGram is the per-block window size. 3 is small enough that a
// patched block still shares most grams with its original, large enough
// to carry ordering signal beyond a bag of mnemonics.
const prefilterGram = 3

// DefaultPrefilterCandidates is the candidate cap used when a caller
// enables the prefilter without choosing one.
const DefaultPrefilterCandidates = 50

// PrefilterMode selects the candidate-generation algorithm of the lossy
// first stage.
type PrefilterMode string

const (
	// ModeScan ranks the corpus by shared-feature count through the
	// inverted index — the default, and the recall baseline: it scans
	// the query's posting lists linearly.
	ModeScan PrefilterMode = "scan"
	// ModeLSH takes candidates from MinHash band-bucket collisions
	// ranked by estimated Jaccard — ~O(1) bucket probes per query
	// instead of a posting scan. When the corpus has no LSH signatures
	// (a v3 file without an LSHB section, and no features to hash),
	// searches fall back to ModeScan and count lsh_fallbacks.
	ModeLSH PrefilterMode = "lsh"
)

// ParsePrefilterMode maps the wire/flag spelling of a mode ("", "scan",
// "lsh") onto its PrefilterMode, reporting ok=false for anything else.
func ParsePrefilterMode(s string) (PrefilterMode, bool) {
	switch s {
	case "", string(ModeScan):
		return ModeScan, true
	case string(ModeLSH):
		return ModeLSH, true
	}
	return "", false
}

// PrefilterOptions selects the lossy candidate-ranking stage of a search.
// The zero value disables it (exact, exhaustive search).
type PrefilterOptions struct {
	// Enabled turns the prefilter on. Candidates > 0 implies Enabled.
	Enabled bool
	// Candidates caps how many top-ranked corpus functions proceed to the
	// exact comparison; <= 0 means DefaultPrefilterCandidates.
	Candidates int
	// Mode picks the candidate generator; the empty value means ModeScan.
	// Mode alone does not enable the prefilter — Enabled (or Candidates)
	// still governs whether the stage runs at all.
	Mode PrefilterMode
}

// cap returns the effective candidate cap, or 0 when disabled.
func (pf PrefilterOptions) cap() int {
	if !pf.Enabled && pf.Candidates <= 0 {
		return 0
	}
	if pf.Candidates <= 0 {
		return DefaultPrefilterCandidates
	}
	return pf.Candidates
}

// hashGram folds a window of normalized instruction strings into one
// 64-bit feature (FNV-1a over the tokens with a separator).
func hashGram(norm []string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, s := range norm {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime64
		}
		h = (h ^ '|') * prime64
	}
	return h
}

// blockFeatures appends the block's features to dst: every
// prefilterGram-window of the normalized body, or one whole-block gram
// when the body is shorter than a window.
func blockFeatures(dst []uint64, body []asm.Inst) []uint64 {
	if len(body) == 0 {
		return dst
	}
	norm := ngram.NormalizeInsts(body)
	if len(norm) < prefilterGram {
		return append(dst, hashGram(norm))
	}
	for i := 0; i+prefilterGram <= len(norm); i++ {
		dst = append(dst, hashGram(norm[i:i+prefilterGram]))
	}
	return dst
}

// dedupeSorted sorts fs and removes duplicates in place (a feature is a
// set member, not a count).
func dedupeSorted(fs []uint64) []uint64 {
	sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	out := fs[:0]
	for i, f := range fs {
		if i == 0 || f != fs[i-1] {
			out = append(out, f)
		}
	}
	return out
}

// FuncFeatures computes the feature set of a lifted corpus function:
// normalized per-block grams over the jump-stripped block bodies, sorted
// and deduplicated.
func FuncFeatures(fn *prep.Function) []uint64 {
	var fs []uint64
	for _, b := range fn.Graph.Blocks {
		fs = blockFeatures(fs, b.Body())
	}
	return dedupeSorted(fs)
}

// QueryFeatures computes the feature set of a decomposed query from its
// distinct tracelet blocks — the same jump-stripped bodies FuncFeatures
// sees on the corpus side.
func QueryFeatures(d *core.Decomposed) []uint64 {
	var fs []uint64
	for _, blk := range d.DistinctBlocks() {
		fs = blockFeatures(fs, blk)
	}
	return dedupeSorted(fs)
}

// featureIndex is the inverted index: feature -> ascending entry ids.
type featureIndex struct {
	n        int // number of entries indexed
	postings map[uint64][]int32
}

// buildFeatureIndex inverts per-entry feature sets.
func buildFeatureIndex(feats [][]uint64) *featureIndex {
	fi := &featureIndex{n: len(feats), postings: make(map[uint64][]int32)}
	for id, fs := range feats {
		for _, f := range fs {
			fi.postings[f] = append(fi.postings[f], int32(id))
		}
	}
	return fi
}

// Ranked is one prefilter-ranked corpus candidate: the entry id and how
// many features it shares with the query. Degraded-mode serving exposes
// this ranking directly (no exact comparison runs behind it).
type Ranked struct {
	ID     int32
	Shared int
}

// ranked scores every entry by shared-feature count with the query and
// returns the top limit in rank order (count descending, id ascending —
// fully deterministic). Entries sharing no feature are never returned.
// ctx is polled between posting-list merges; on cancellation the partial
// ranking is abandoned and nil is returned (callers check ctx.Err()).
func (fi *featureIndex) ranked(ctx context.Context, query []uint64, limit int) []Ranked {
	if fi == nil || limit <= 0 {
		return nil
	}
	counts := make([]int32, fi.n)
	for qi, f := range query {
		if qi&127 == 0 && ctx != nil && ctx.Err() != nil {
			return nil
		}
		for _, id := range fi.postings[f] {
			counts[id]++
		}
	}
	cands := make([]Ranked, 0, fi.n)
	for id := int32(0); id < int32(fi.n); id++ {
		if counts[id] > 0 {
			cands = append(cands, Ranked{ID: id, Shared: int(counts[id])})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].Shared > cands[j].Shared
	})
	if len(cands) > limit {
		cands = cands[:limit]
	}
	return cands
}

// topCandidates selects the top limit entries by (count descending, id
// ascending) and returns their ids in ascending order.
func (fi *featureIndex) topCandidates(ctx context.Context, query []uint64, limit int) []int32 {
	ranked := fi.ranked(ctx, query, limit)
	if len(ranked) == 0 {
		return nil
	}
	cands := make([]int32, len(ranked))
	for i, r := range ranked {
		cands[i] = r.ID
	}
	// Exact comparison order should follow entry order for cache locality
	// and stable telemetry, not rank order.
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	return cands
}
