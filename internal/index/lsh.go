package index

import (
	"context"
	"sort"

	"repro/internal/idxfile"
	"repro/internal/minhash"
	"repro/internal/telemetry"
)

// lshIndex is the banded MinHash candidate generator: per band, a map
// from band hash to the ascending entry ids bucketed there. It is built
// once (from persisted v3 signatures or freshly hashed feature sets)
// and then read lock-free by any number of queries. The source
// signatures are NOT retained — they may alias a zero-copy mmap slice,
// and everything a probe needs lives in the buckets — so the index
// safely outlives the backing store. Lookup cost is Bands bucket probes
// plus a dense counting pass — independent of corpus size for
// well-spread buckets, versus the scan prefilter's full posting-list
// merge.
type lshIndex struct {
	p       minhash.Params
	n       int
	buckets []map[uint64][]int32
}

// newLSHIndex buckets n pre-computed signatures. The bucket-occupancy
// distribution goes to tel as the lsh_bucket_occupancy value histogram,
// so pathological bucket pileups (a degenerate hash family or corpus)
// are visible on /metrics.
func newLSHIndex(p minhash.Params, sigs []uint32, n int, tel *telemetry.Collector) *lshIndex {
	k := p.K()
	x := &lshIndex{p: p, n: n, buckets: make([]map[uint64][]int32, p.Bands)}
	for b := range x.buckets {
		x.buckets[b] = make(map[uint64][]int32)
	}
	for id := 0; id < n; id++ {
		sig := sigs[id*k : (id+1)*k]
		for b := 0; b < p.Bands; b++ {
			h := minhash.BandHash(sig, b, p)
			x.buckets[b][h] = append(x.buckets[b][h], int32(id))
		}
	}
	for _, bk := range x.buckets {
		for _, ids := range bk {
			tel.ObserveValue(telemetry.LSHBucketOccupancy, int64(len(ids)))
		}
	}
	return x
}

// lshFromStore adopts the persisted signatures of a v3 file carrying an
// LSHB section, or returns nil when the file has none.
func lshFromStore(f *idxfile.File, tel *telemetry.Collector) *lshIndex {
	if f == nil || !f.HasLSH() {
		return nil
	}
	return newLSHIndex(f.LSHParams(), f.LSHSigs(), f.NumFuncs(), tel)
}

// lshFromFeatures hashes per-entry feature sets under p — the in-memory
// path for gob-backed databases, where the corpus is small enough that
// signing it at first use is cheap.
func lshFromFeatures(p minhash.Params, feats [][]uint64, tel *telemetry.Collector) *lshIndex {
	sigs := make([]uint32, len(feats)*p.K())
	k := p.K()
	for i, fs := range feats {
		minhash.Signature(sigs[i*k:(i+1)*k], fs, p)
	}
	return newLSHIndex(p, sigs, len(feats), tel)
}

// ranked unions the query's band-bucket collisions and ranks by
// estimated Jaccard — signature positions pinned by colliding bands
// (Rows per collision, so Shared is collisions*Rows out of K; with
// Rows=1 that is exactly the matching-position count), descending, id
// ascending — returning the top limit. Collision counting uses a dense
// per-entry array and a counting-sort selection over the Bands+1
// possible counts, so a probe costs O(total bucket sizes + n) with no
// comparison sort and no per-candidate signature walk. An empty query
// feature set yields no candidates, mirroring the scan prefilter. ctx
// is polled per band; on cancellation the partial ranking is abandoned
// and nil is returned (callers check ctx.Err()). Raw collision counts
// go to tel.
func (x *lshIndex) ranked(ctx context.Context, query []uint64, limit int, tel *telemetry.Collector) []Ranked {
	if x == nil || limit <= 0 || len(query) == 0 {
		return nil
	}
	qsig := minhash.Signature(nil, query, x.p)
	counts := make([]int32, x.n)
	collisions := 0
	for b := 0; b < x.p.Bands; b++ {
		if ctx != nil && ctx.Err() != nil {
			return nil
		}
		ids := x.buckets[b][minhash.BandHash(qsig, b, x.p)]
		collisions += len(ids)
		for _, id := range ids {
			counts[id]++
		}
	}
	tel.Add(telemetry.LSHBandCollisions, uint64(collisions))
	// Bucket ids by collision count; iterating ids ascending makes each
	// bucket ascending, so draining counts high-to-low emits the exact
	// (Shared desc, ID asc) order a comparison sort would.
	byCount := make([][]int32, x.p.Bands+1)
	for id := int32(0); id < int32(x.n); id++ {
		if c := counts[id]; c > 0 {
			byCount[c] = append(byCount[c], id)
		}
	}
	cands := make([]Ranked, 0, limit)
	for c := x.p.Bands; c >= 1 && len(cands) < limit; c-- {
		for _, id := range byCount[c] {
			cands = append(cands, Ranked{ID: id, Shared: c * x.p.Rows})
			if len(cands) == limit {
				break
			}
		}
	}
	return cands
}

// topCandidates is ranked reduced to ids in ascending order — the same
// contract as featureIndex.topCandidates, so the exact-comparison stage
// is mode-agnostic.
func (x *lshIndex) topCandidates(ctx context.Context, query []uint64, limit int, tel *telemetry.Collector) []int32 {
	ranked := x.ranked(ctx, query, limit, tel)
	if len(ranked) == 0 {
		return nil
	}
	ids := make([]int32, len(ranked))
	for i, r := range ranked {
		ids[i] = r.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
