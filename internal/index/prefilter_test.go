package index

import (
	"bytes"
	"context"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// TestLoadV1Compat: a v1-headered index (entries only, no feature table)
// must still load, search, and serve prefiltered queries — the features
// are just recomputed instead of deserialized.
func TestLoadV1Compat(t *testing.T) {
	db, _ := buildTestDB(t)
	var buf bytes.Buffer
	buf.Write(append([]byte(indexMagic), 1))
	// A v1 writer serialized gobDB without Feats; encoding the Entries-only
	// shape reproduces its payload byte-for-byte semantics.
	type gobDBv1 struct {
		Entries []*Entry
	}
	if err := gob.NewEncoder(&buf).Encode(gobDBv1{Entries: db.Entries}); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatalf("v1 load: %v", err)
	}
	if db2.Len() != db.Len() {
		t.Fatalf("v1 load: %d entries, want %d", db2.Len(), db.Len())
	}
	if db2.feats != nil {
		t.Error("v1 payload cannot carry features; expected lazy recompute")
	}
	query := queryFor(t, db2, corpus.LibFuncName)
	opts := core.DefaultOptions()
	exhaustive := db2.Search(query, opts)
	if len(exhaustive) != db2.Len() {
		t.Fatalf("v1 search returned %d hits, want %d", len(exhaustive), db2.Len())
	}
	pre := db2.SearchWith(query, opts, PrefilterOptions{Enabled: true, Candidates: 5})
	if len(pre) == 0 || len(pre) > 5 {
		t.Fatalf("v1 prefiltered search returned %d hits", len(pre))
	}
}

// TestSaveLoadV2Features: Save must persist the feature table and Load
// must adopt it verbatim (no recompute) when it lines up.
func TestSaveLoadV2Features(t *testing.T) {
	db, _ := buildTestDB(t)
	want := db.features()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[len(indexMagic)]; v != 2 {
		t.Fatalf("saved version %d, want 2", v)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.feats == nil {
		t.Fatal("v2 load dropped the feature table")
	}
	if !reflect.DeepEqual(db2.feats, want) {
		t.Error("deserialized features differ from recomputed ones")
	}
}

// TestLoadMisalignedFeatures: a payload whose feature table does not line
// up with the entries (fuzzer territory) must be ignored, not adopted.
func TestLoadMisalignedFeatures(t *testing.T) {
	db, _ := buildTestDB(t)
	var buf bytes.Buffer
	buf.Write(append([]byte(indexMagic), indexVersion))
	bogus := gobDB{Entries: db.Entries, Feats: [][]uint64{{1, 2, 3}}}
	if err := gob.NewEncoder(&buf).Encode(bogus); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.feats != nil {
		t.Error("misaligned feature table was adopted")
	}
	if got := db2.features(); len(got) != db2.Len() {
		t.Errorf("recomputed features: %d sets for %d entries", len(got), db2.Len())
	}
}

// TestPrefilterSubsetOfExhaustive: every prefiltered hit must carry a
// Result identical to the exhaustive scan's for the same entry — the
// prefilter selects candidates, it never changes scores.
func TestPrefilterSubsetOfExhaustive(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	opts := core.DefaultOptions()
	full := db.Search(query, opts)
	byEntry := make(map[*Entry]core.Result, len(full))
	for _, h := range full {
		byEntry[h.Entry] = h.Result
	}
	for _, c := range []int{1, 5, 1 << 20} {
		pre := db.SearchWith(query, opts, PrefilterOptions{Candidates: c})
		if len(pre) == 0 {
			t.Fatalf("cap %d: no candidates shared a feature with the query", c)
		}
		if len(pre) > c {
			t.Fatalf("cap %d exceeded: %d hits", c, len(pre))
		}
		for _, h := range pre {
			want, ok := byEntry[h.Entry]
			if !ok {
				t.Fatalf("cap %d: prefiltered hit not in exhaustive results", c)
			}
			if h.Result != want {
				t.Errorf("cap %d: %s/%s result drifted: %+v vs %+v",
					c, h.Entry.Exe, h.Entry.Name, h.Result, want)
			}
		}
	}
}

// TestPrefilterFindsSelf: the query was built from an indexed context, so
// a near-identical corpus entry shares nearly all features — it must rank
// into even a tiny candidate set and the exact stage must match it.
func TestPrefilterFindsSelf(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	hits := db.SearchWith(query, core.DefaultOptions(), PrefilterOptions{Candidates: 3})
	found := false
	for _, h := range hits {
		if h.Result.IsMatch {
			found = true
		}
	}
	if !found {
		t.Error("prefiltered search lost the planted match at cap 3")
	}
}

// TestPrefilterDeterministic: identical queries must yield identical
// candidate sets and hit orders.
func TestPrefilterDeterministic(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	pf := PrefilterOptions{Candidates: 7}
	a := db.SearchWith(query, core.DefaultOptions(), pf)
	b := db.SearchWith(query, core.DefaultOptions(), pf)
	if len(a) != len(b) {
		t.Fatalf("candidate count drifted: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Entry != b[i].Entry || a[i].Result != b[i].Result {
			t.Fatalf("hit %d drifted between identical queries", i)
		}
	}
}

// TestSnapshotPrefilterParity: DB.SearchWith and the snapshot path must
// return identical prefiltered hits.
func TestSnapshotPrefilterParity(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	snap := BuildSnapshot(db, []int{3}, 4)
	opts := core.DefaultOptions()
	pf := PrefilterOptions{Candidates: 9}
	want := db.SearchWith(query, opts, pf)
	got, err := snap.SearchDecomposedWith(core.Decompose(query, 3), opts, pf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot prefilter returned %d hits, DB returned %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Entry.Exe != want[i].Entry.Exe || got[i].Entry.Name != want[i].Entry.Name ||
			got[i].Result != want[i].Result {
			t.Errorf("hit %d differs: %s/%s vs %s/%s", i,
				got[i].Entry.Exe, got[i].Entry.Name, want[i].Entry.Exe, want[i].Entry.Name)
		}
	}
}

// TestSearchPruneParity: DB.Search with the default (pruned) options must
// return hits bit-identical to exhaustive mode — the index-level view of
// the core pruner's losslessness.
func TestSearchPruneParity(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	exact := core.DefaultOptions()
	exact.Prune = false
	pruned := core.DefaultOptions()
	pruned.Prune = true
	a := db.Search(query, exact)
	b := db.Search(query, pruned)
	if len(a) != len(b) {
		t.Fatalf("hit counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		// PairsPruned is work accounting, nonzero only when pruning runs.
		a[i].Result.PairsPruned, b[i].Result.PairsPruned = 0, 0
		if a[i].Entry != b[i].Entry || a[i].Result != b[i].Result {
			t.Errorf("hit %d: pruned %+v != exhaustive %+v", i, b[i].Result, a[i].Result)
		}
	}
}

// TestTopCandidatesOrdering: deterministic selection by (count desc, id
// asc), output in ascending id order, zero-overlap entries excluded.
func TestTopCandidatesOrdering(t *testing.T) {
	fi := buildFeatureIndex([][]uint64{
		{1, 2, 3}, // id 0: 2 shared
		{1, 2},    // id 1: 2 shared (tie -> lower id wins on cut)
		{9},       // id 2: none shared
		{1},       // id 3: 1 shared
	})
	got := fi.topCandidates(context.Background(), []uint64{1, 2}, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("topCandidates = %v, want [0 1]", got)
	}
	all := fi.topCandidates(context.Background(), []uint64{1, 2}, 10)
	if len(all) != 3 {
		t.Errorf("zero-overlap entry leaked into candidates: %v", all)
	}
	if fi.topCandidates(context.Background(), []uint64{42}, 10) == nil {
		// sharing nothing is fine; just must be empty
	}
	if n := len(fi.topCandidates(context.Background(), []uint64{42}, 10)); n != 0 {
		t.Errorf("no-overlap query returned %d candidates", n)
	}
}
