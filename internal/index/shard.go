package index

import (
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/idxfile"
	"repro/internal/minhash"
	"repro/internal/prep"
)

// ShardOf maps an indexed function to its shard in an n-way fleet:
// FNV-1a over the (exe, name) identity, reduced mod n. The identity —
// not the address or position — is hashed so that re-indexing,
// reordering, or appending to the corpus never migrates an existing
// function between shards, and so the coordinator can route
// by-reference queries without consulting a placement table. n <= 1
// collapses to a single shard.
func ShardOf(exe, name string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	io.WriteString(h, exe)
	h.Write([]byte{0})
	io.WriteString(h, name)
	return int(h.Sum64() % uint64(n))
}

// SaveV3Shard serializes shard (0-based) of an n-way split of the
// database in the v3 columnar format: exactly the entries with
// ShardOf(exe, name, nShards) == shard, in corpus order. The union of
// the n outputs is a disjoint partition of the corpus, so a
// scatter-gather merge of per-shard search results over all n slices
// ranks identically to searching the unsharded index.
func (db *DB) SaveV3Shard(w io.Writer, shard, nShards int) error {
	return db.saveV3Shard(w, shard, nShards, nil)
}

// SaveV3ShardLSH is SaveV3Shard with an LSHB section (see SaveV3LSH).
func (db *DB) SaveV3ShardLSH(w io.Writer, shard, nShards int, p minhash.Params) error {
	return db.saveV3Shard(w, shard, nShards, &p)
}

func (db *DB) saveV3Shard(w io.Writer, shard, nShards int, lsh *minhash.Params) error {
	if nShards < 1 {
		return fmt.Errorf("index: shard count %d, want >= 1", nShards)
	}
	if shard < 0 || shard >= nShards {
		return fmt.Errorf("index: shard %d of %d out of range", shard, nShards)
	}
	feats := db.features()
	b := idxfile.NewBuilder()
	if lsh != nil {
		b.SetLSH(*lsh)
	}
	for i, e := range db.Entries {
		if ShardOf(e.Exe, e.Name, nShards) != shard {
			continue
		}
		var fn *prep.Function
		if e.Func != nil {
			fn = e.Func
		} else if e.src != nil {
			// Decode without populating the entry's lazy cache: a shard
			// pass must not pin the whole corpus on the heap.
			fn = e.src.DecodeFunc(e.srcIdx)
		}
		if fn == nil {
			return fmt.Errorf("index: entry %d has no function to serialize", i)
		}
		b.Add(e.Exe, fn, e.Truth, feats[i])
	}
	_, err := b.WriteTo(w)
	return err
}

// ValidateFunction structurally validates a deserialized lifted
// function: the control-flow graph must exist, its entry block and
// every successor index must be in range, and no block may be nil —
// any of which would panic the first Decompose call (tracelet
// extraction indexes Blocks by successor). Load applies it to every
// gob entry; the serving layer applies it to query functions received
// over untrusted transports before searching with them.
func ValidateFunction(fn *prep.Function) error {
	if fn == nil || fn.Graph == nil {
		return fmt.Errorf("missing lifted function")
	}
	gr := fn.Graph
	if gr.Entry < 0 || (len(gr.Blocks) > 0 && gr.Entry >= len(gr.Blocks)) {
		return fmt.Errorf("entry block %d of %d", gr.Entry, len(gr.Blocks))
	}
	for bi, b := range gr.Blocks {
		if b == nil {
			return fmt.Errorf("nil block %d", bi)
		}
		for _, s := range b.Succs {
			if s < 0 || s >= len(gr.Blocks) {
				return fmt.Errorf("block %d successor %d of %d", bi, s, len(gr.Blocks))
			}
		}
	}
	return nil
}
