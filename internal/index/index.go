// Package index implements the function database and search engine of the
// prototype (paper Section 5.2): executables are disassembled and lifted
// on ingest, decomposed into tracelets per requested k (cached), and a
// query function is compared against every indexed function in parallel.
// The database serializes with encoding/gob.
package index

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/prep"
	"repro/internal/telemetry"
)

// Entry is one indexed binary function.
type Entry struct {
	Exe   string // executable name
	Name  string // recovered name (sub_XXX in stripped binaries)
	Addr  uint32
	Truth string // ground-truth source name, if known (evaluation only)
	Func  *prep.Function
}

// DB is the searchable function database. Concurrent Search/Decomposed
// calls are safe; AddImage must not race with readers (ingest the corpus
// first, or build an immutable Snapshot for serving).
type DB struct {
	Entries []*Entry

	// Tel, when non-nil, receives index telemetry (corpus decomposition
	// latency) and is the default collector for Search when the query's
	// opts.Tel is nil. It is not serialized by Save.
	Tel *telemetry.Collector

	mu         sync.Mutex // guards decomposed, feats, fidx
	decomposed map[int][]*core.Decomposed
	feats      [][]uint64 // per-entry prefilter features, aligned with Entries
	fidx       *featureIndex
}

// New returns an empty database.
func New() *DB {
	return &DB{decomposed: make(map[int][]*core.Decomposed)}
}

// AddImage lifts all functions of a (possibly stripped) ELF image and
// indexes them. truth maps function addresses to ground-truth names and
// may be nil.
func (db *DB) AddImage(exe string, img []byte, truth map[uint32]string) error {
	fns, err := prep.LiftImage(img)
	if err != nil {
		return fmt.Errorf("index: %s: %w", exe, err)
	}
	for _, fn := range fns {
		e := &Entry{Exe: exe, Name: fn.Name, Addr: fn.Addr, Func: fn}
		if truth != nil {
			e.Truth = truth[fn.Addr]
		}
		db.Entries = append(db.Entries, e)
	}
	db.mu.Lock()
	db.decomposed = make(map[int][]*core.Decomposed) // invalidate caches
	db.feats, db.fidx = nil, nil
	db.mu.Unlock()
	return nil
}

// Len returns the number of indexed functions.
func (db *DB) Len() int { return len(db.Entries) }

// Decomposed returns the k-tracelet decomposition of every entry, cached
// per k and aligned with Entries. It is safe for concurrent use: the
// first caller for a given k computes (and the rest wait), after which
// lookups only take the mutex briefly.
func (db *DB) Decomposed(k int) []*core.Decomposed {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.decomposed == nil {
		db.decomposed = make(map[int][]*core.Decomposed)
	}
	if d, ok := db.decomposed[k]; ok {
		return d
	}
	d := make([]*core.Decomposed, len(db.Entries))
	for i, e := range db.Entries {
		d[i] = core.DecomposeT(e.Func, k, db.Tel)
	}
	db.decomposed[k] = d
	return d
}

// features returns the per-entry prefilter feature sets, computing them
// once (or adopting the sets deserialized from a v2 index file).
func (db *DB) features() [][]uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.feats == nil {
		fs := make([][]uint64, len(db.Entries))
		for i, e := range db.Entries {
			fs[i] = FuncFeatures(e.Func)
		}
		db.feats = fs
	}
	return db.feats
}

// prefilterIndex returns the inverted feature index, built lazily on the
// first prefiltered search.
func (db *DB) prefilterIndex() *featureIndex {
	fs := db.features()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.fidx == nil {
		db.fidx = buildFeatureIndex(fs)
	}
	return db.fidx
}

// Hit is one search result.
type Hit struct {
	Entry  *Entry
	Result core.Result
}

// Search compares the query function against every entry, in parallel,
// and returns all hits ordered by similarity score (descending), with
// ties broken by executable and name for determinism.
//
// Telemetry: the query is counted and timed end-to-end into opts.Tel
// (falling back to db.Tel when opts.Tel is nil), and when opts.Trace is
// set the span gains "decompose", "scan" (one compare child per
// candidate) and "rank" children tracing the whole decision.
func (db *DB) Search(query *prep.Function, opts core.Options) []Hit {
	hits, _ := db.SearchCtx(context.Background(), query, opts, PrefilterOptions{})
	return hits
}

// SearchWith is Search with an explicit prefilter stage: when pf enables
// it, only the top-C corpus functions by shared prefilter features are
// compared exactly (a lossy cut — a true match sharing no features with
// the query is missed). The zero PrefilterOptions makes it identical to
// Search.
func (db *DB) SearchWith(query *prep.Function, opts core.Options, pf PrefilterOptions) []Hit {
	hits, _ := db.SearchCtx(context.Background(), query, opts, pf)
	return hits
}

// SearchCtx is SearchWith bounded by ctx: the comparison workers check
// it cooperatively and the search returns ctx.Err() — with nil hits —
// shortly after cancellation or deadline expiry. A Background (or nil)
// context adds no overhead and leaves results identical to SearchWith.
func (db *DB) SearchCtx(ctx context.Context, query *prep.Function, opts core.Options, pf PrefilterOptions) ([]Hit, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Tel == nil {
		opts.Tel = db.Tel
	}
	tel := opts.Tel
	tel.Inc(telemetry.Queries)
	qt := tel.StartTimer(telemetry.QueryLatency)
	root := opts.Trace
	k := opts.K
	if k <= 0 {
		k = 3 // mirror NewMatcher's default
	}
	dsp := root.Child("decompose")
	ref := core.DecomposeT(query, k, tel)
	targets := db.Decomposed(k)
	dsp.Set("query_tracelets", int64(len(ref.Tracelets)))
	dsp.Set("corpus_functions", int64(len(targets)))
	dsp.End()

	// Stage 1 (optional, lossy): rank corpus functions by shared features
	// and keep the top C for exact comparison.
	var ids []int32 // set iff the prefilter ran: hit i maps to entry ids[i]
	if c := pf.cap(); c > 0 {
		fsp := root.Child("prefilter")
		ids = db.prefilterIndex().topCandidates(ctx, QueryFeatures(ref), c)
		if err := ctx.Err(); err != nil {
			fsp.End()
			noteCtxErr(tel, err)
			qt.Stop()
			return nil, err
		}
		tel.Add(telemetry.PrefilterCandidates, uint64(len(ids)))
		fsp.Set("candidates", int64(len(ids)))
		fsp.Set("cap", int64(c))
		fsp.End()
		sub := make([]*core.Decomposed, len(ids))
		for i, id := range ids {
			sub[i] = targets[id]
		}
		targets = sub
	}

	// Stage 2 (exact): full tracelet comparison of the surviving targets.
	opts.Trace = root.Child("scan")
	m := core.NewMatcher(opts)
	results, err := m.CompareManyCtx(ctx, ref, targets)
	opts.Trace.End()
	if err != nil {
		noteCtxErr(tel, err)
		qt.Stop()
		return nil, err
	}
	hits := make([]Hit, len(results))
	for i := range results {
		ei := i
		if ids != nil {
			ei = int(ids[i])
		}
		hits[i] = Hit{Entry: db.Entries[ei], Result: results[i]}
	}
	rsp := root.Child("rank")
	SortHits(hits)
	rsp.End()
	qt.Stop()
	return hits, nil
}

// gobDB is the serialized form. Feats (since format v2) carries the
// per-entry prefilter feature sets so serving nodes skip recomputing
// them at load; v1 payloads simply decode with Feats nil and the sets
// are rebuilt lazily on the first prefiltered search.
type gobDB struct {
	Entries []*Entry
	Feats   [][]uint64
}

// The on-disk format is an 8-byte magic plus a one-byte format version in
// front of the gob payload, so a stale or foreign file fails fast with a
// versioned error instead of an opaque gob decode failure. Headerless
// files written before the header existed ("v0") and v1 files (no
// prefilter features) are still read.
const (
	indexMagic   = "TRACYIDX"
	indexVersion = 2
)

// Save serializes the database (entries plus prefilter features;
// decompositions are recomputed on demand), prefixed with the format
// header.
func (db *DB) Save(w io.Writer) error {
	hdr := append([]byte(indexMagic), indexVersion)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(gobDB{Entries: db.Entries, Feats: db.features()})
}

// Load restores a database written by Save. It accepts the current
// headered format, the v1 header (entries only — prefilter features are
// recomputed on demand), and headerless v0 files; anything else — a
// future format version or a file that is not a tracy index at all —
// yields an error naming the expected format version.
func Load(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	if peek, err := br.Peek(len(indexMagic) + 1); err == nil && string(peek[:len(indexMagic)]) == indexMagic {
		if v := int(peek[len(indexMagic)]); v != indexVersion && v != 1 {
			return nil, fmt.Errorf("index: format v%d expected, file is v%d (rebuild with tracy index)", indexVersion, v)
		}
		if _, err := br.Discard(len(indexMagic) + 1); err != nil {
			return nil, err
		}
	}
	var g gobDB
	if err := gob.NewDecoder(br).Decode(&g); err != nil {
		return nil, fmt.Errorf("index: not a tracy index (format v%d expected): %w", indexVersion, err)
	}
	// Structural validation: gob will happily decode a payload whose
	// entries are nil, missing their lifted function, or carrying a
	// control-flow graph with out-of-range successor indices — any of
	// which would panic the first Search or Decomposed call (tracelet
	// extraction indexes Blocks by successor). Reject such files here,
	// where the caller still has an error path.
	for i, e := range g.Entries {
		if e == nil || e.Func == nil || e.Func.Graph == nil {
			return nil, fmt.Errorf("index: corrupt entry %d (missing lifted function)", i)
		}
		gr := e.Func.Graph
		if gr.Entry < 0 || (len(gr.Blocks) > 0 && gr.Entry >= len(gr.Blocks)) {
			return nil, fmt.Errorf("index: corrupt entry %d (entry block %d of %d)", i, gr.Entry, len(gr.Blocks))
		}
		for bi, b := range gr.Blocks {
			if b == nil {
				return nil, fmt.Errorf("index: corrupt entry %d (nil block %d)", i, bi)
			}
			for _, s := range b.Succs {
				if s < 0 || s >= len(gr.Blocks) {
					return nil, fmt.Errorf("index: corrupt entry %d (block %d successor %d of %d)",
						i, bi, s, len(gr.Blocks))
				}
			}
		}
	}
	db := &DB{Entries: g.Entries, decomposed: make(map[int][]*core.Decomposed)}
	// Adopt serialized prefilter features only when they line up with the
	// entries — a fuzzed or hand-edited payload must not smuggle in a
	// misaligned feature table (features() rebuilds from scratch instead).
	if g.Feats != nil && len(g.Feats) == len(g.Entries) {
		db.feats = g.Feats
	}
	return db, nil
}
