// Package index implements the function database and search engine of the
// prototype (paper Section 5.2): executables are disassembled and lifted
// on ingest, decomposed into tracelets per requested k (cached), and a
// query function is compared against every indexed function in parallel.
// The database serializes with encoding/gob.
package index

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/prep"
	"repro/internal/telemetry"
)

// Entry is one indexed binary function.
type Entry struct {
	Exe   string // executable name
	Name  string // recovered name (sub_XXX in stripped binaries)
	Addr  uint32
	Truth string // ground-truth source name, if known (evaluation only)
	Func  *prep.Function
}

// DB is the searchable function database. Concurrent Search/Decomposed
// calls are safe; AddImage must not race with readers (ingest the corpus
// first, or build an immutable Snapshot for serving).
type DB struct {
	Entries []*Entry

	// Tel, when non-nil, receives index telemetry (corpus decomposition
	// latency) and is the default collector for Search when the query's
	// opts.Tel is nil. It is not serialized by Save.
	Tel *telemetry.Collector

	mu         sync.Mutex // guards decomposed
	decomposed map[int][]*core.Decomposed
}

// New returns an empty database.
func New() *DB {
	return &DB{decomposed: make(map[int][]*core.Decomposed)}
}

// AddImage lifts all functions of a (possibly stripped) ELF image and
// indexes them. truth maps function addresses to ground-truth names and
// may be nil.
func (db *DB) AddImage(exe string, img []byte, truth map[uint32]string) error {
	fns, err := prep.LiftImage(img)
	if err != nil {
		return fmt.Errorf("index: %s: %w", exe, err)
	}
	for _, fn := range fns {
		e := &Entry{Exe: exe, Name: fn.Name, Addr: fn.Addr, Func: fn}
		if truth != nil {
			e.Truth = truth[fn.Addr]
		}
		db.Entries = append(db.Entries, e)
	}
	db.mu.Lock()
	db.decomposed = make(map[int][]*core.Decomposed) // invalidate cache
	db.mu.Unlock()
	return nil
}

// Len returns the number of indexed functions.
func (db *DB) Len() int { return len(db.Entries) }

// Decomposed returns the k-tracelet decomposition of every entry, cached
// per k and aligned with Entries. It is safe for concurrent use: the
// first caller for a given k computes (and the rest wait), after which
// lookups only take the mutex briefly.
func (db *DB) Decomposed(k int) []*core.Decomposed {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.decomposed == nil {
		db.decomposed = make(map[int][]*core.Decomposed)
	}
	if d, ok := db.decomposed[k]; ok {
		return d
	}
	d := make([]*core.Decomposed, len(db.Entries))
	for i, e := range db.Entries {
		d[i] = core.DecomposeT(e.Func, k, db.Tel)
	}
	db.decomposed[k] = d
	return d
}

// Hit is one search result.
type Hit struct {
	Entry  *Entry
	Result core.Result
}

// Search compares the query function against every entry, in parallel,
// and returns all hits ordered by similarity score (descending), with
// ties broken by executable and name for determinism.
//
// Telemetry: the query is counted and timed end-to-end into opts.Tel
// (falling back to db.Tel when opts.Tel is nil), and when opts.Trace is
// set the span gains "decompose", "scan" (one compare child per
// candidate) and "rank" children tracing the whole decision.
func (db *DB) Search(query *prep.Function, opts core.Options) []Hit {
	if opts.Tel == nil {
		opts.Tel = db.Tel
	}
	tel := opts.Tel
	tel.Inc(telemetry.Queries)
	qt := tel.StartTimer(telemetry.QueryLatency)
	root := opts.Trace
	k := opts.K
	if k <= 0 {
		k = 3 // mirror NewMatcher's default
	}
	dsp := root.Child("decompose")
	ref := core.DecomposeT(query, k, tel)
	targets := db.Decomposed(k)
	dsp.Set("query_tracelets", int64(len(ref.Tracelets)))
	dsp.Set("corpus_functions", int64(len(targets)))
	dsp.End()
	opts.Trace = root.Child("scan")
	m := core.NewMatcher(opts)
	results := m.CompareMany(ref, targets)
	opts.Trace.End()
	hits := make([]Hit, len(results))
	for i := range results {
		hits[i] = Hit{Entry: db.Entries[i], Result: results[i]}
	}
	rsp := root.Child("rank")
	SortHits(hits)
	rsp.End()
	qt.Stop()
	return hits
}

// gobDB is the serialized form.
type gobDB struct {
	Entries []*Entry
}

// The on-disk format is an 8-byte magic plus a one-byte format version in
// front of the gob payload, so a stale or foreign file fails fast with a
// versioned error instead of an opaque gob decode failure. Headerless
// files written before the header existed ("v0") are still read.
const (
	indexMagic   = "TRACYIDX"
	indexVersion = 1
)

// Save serializes the database (entries only; decompositions are
// recomputed on demand), prefixed with the format header.
func (db *DB) Save(w io.Writer) error {
	hdr := append([]byte(indexMagic), indexVersion)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(gobDB{Entries: db.Entries})
}

// Load restores a database written by Save. It accepts the current
// headered format and headerless v0 files; anything else — a future
// format version or a file that is not a tracy index at all — yields an
// error naming the expected format version.
func Load(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	if peek, err := br.Peek(len(indexMagic) + 1); err == nil && string(peek[:len(indexMagic)]) == indexMagic {
		if v := int(peek[len(indexMagic)]); v != indexVersion {
			return nil, fmt.Errorf("index: format v%d expected, file is v%d (rebuild with tracy index)", indexVersion, v)
		}
		if _, err := br.Discard(len(indexMagic) + 1); err != nil {
			return nil, err
		}
	}
	var g gobDB
	if err := gob.NewDecoder(br).Decode(&g); err != nil {
		return nil, fmt.Errorf("index: not a tracy index (format v%d expected): %w", indexVersion, err)
	}
	// Structural validation: gob will happily decode a payload whose
	// entries are nil, missing their lifted function, or carrying a
	// control-flow graph with out-of-range successor indices — any of
	// which would panic the first Search or Decomposed call (tracelet
	// extraction indexes Blocks by successor). Reject such files here,
	// where the caller still has an error path.
	for i, e := range g.Entries {
		if e == nil || e.Func == nil || e.Func.Graph == nil {
			return nil, fmt.Errorf("index: corrupt entry %d (missing lifted function)", i)
		}
		gr := e.Func.Graph
		if gr.Entry < 0 || (len(gr.Blocks) > 0 && gr.Entry >= len(gr.Blocks)) {
			return nil, fmt.Errorf("index: corrupt entry %d (entry block %d of %d)", i, gr.Entry, len(gr.Blocks))
		}
		for bi, b := range gr.Blocks {
			if b == nil {
				return nil, fmt.Errorf("index: corrupt entry %d (nil block %d)", i, bi)
			}
			for _, s := range b.Succs {
				if s < 0 || s >= len(gr.Blocks) {
					return nil, fmt.Errorf("index: corrupt entry %d (block %d successor %d of %d)",
						i, bi, s, len(gr.Blocks))
				}
			}
		}
	}
	return &DB{Entries: g.Entries, decomposed: make(map[int][]*core.Decomposed)}, nil
}
