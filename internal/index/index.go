// Package index implements the function database and search engine of the
// prototype (paper Section 5.2): executables are disassembled and lifted
// on ingest, decomposed into tracelets per requested k (cached), and a
// query function is compared against every indexed function in parallel.
// The database serializes with encoding/gob.
package index

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/prep"
	"repro/internal/telemetry"
)

// Entry is one indexed binary function.
type Entry struct {
	Exe   string // executable name
	Name  string // recovered name (sub_XXX in stripped binaries)
	Addr  uint32
	Truth string // ground-truth source name, if known (evaluation only)
	Func  *prep.Function
}

// DB is the searchable function database.
type DB struct {
	Entries []*Entry

	// Tel, when non-nil, receives index telemetry (corpus decomposition
	// latency) and is the default collector for Search when the query's
	// opts.Tel is nil. It is not serialized by Save.
	Tel *telemetry.Collector

	decomposed map[int][]*core.Decomposed
}

// New returns an empty database.
func New() *DB {
	return &DB{decomposed: make(map[int][]*core.Decomposed)}
}

// AddImage lifts all functions of a (possibly stripped) ELF image and
// indexes them. truth maps function addresses to ground-truth names and
// may be nil.
func (db *DB) AddImage(exe string, img []byte, truth map[uint32]string) error {
	fns, err := prep.LiftImage(img)
	if err != nil {
		return fmt.Errorf("index: %s: %w", exe, err)
	}
	for _, fn := range fns {
		e := &Entry{Exe: exe, Name: fn.Name, Addr: fn.Addr, Func: fn}
		if truth != nil {
			e.Truth = truth[fn.Addr]
		}
		db.Entries = append(db.Entries, e)
	}
	db.decomposed = make(map[int][]*core.Decomposed) // invalidate cache
	return nil
}

// Len returns the number of indexed functions.
func (db *DB) Len() int { return len(db.Entries) }

// Decomposed returns the k-tracelet decomposition of every entry, cached
// per k and aligned with Entries.
func (db *DB) Decomposed(k int) []*core.Decomposed {
	if db.decomposed == nil {
		db.decomposed = make(map[int][]*core.Decomposed)
	}
	if d, ok := db.decomposed[k]; ok {
		return d
	}
	d := make([]*core.Decomposed, len(db.Entries))
	for i, e := range db.Entries {
		d[i] = core.DecomposeT(e.Func, k, db.Tel)
	}
	db.decomposed[k] = d
	return d
}

// Hit is one search result.
type Hit struct {
	Entry  *Entry
	Result core.Result
}

// Search compares the query function against every entry, in parallel,
// and returns all hits ordered by similarity score (descending), with
// ties broken by executable and name for determinism.
//
// Telemetry: the query is counted and timed end-to-end into opts.Tel
// (falling back to db.Tel when opts.Tel is nil), and when opts.Trace is
// set the span gains "decompose", "scan" (one compare child per
// candidate) and "rank" children tracing the whole decision.
func (db *DB) Search(query *prep.Function, opts core.Options) []Hit {
	if opts.Tel == nil {
		opts.Tel = db.Tel
	}
	tel := opts.Tel
	tel.Inc(telemetry.Queries)
	qt := tel.StartTimer(telemetry.QueryLatency)
	root := opts.Trace
	k := opts.K
	if k <= 0 {
		k = 3 // mirror NewMatcher's default
	}
	dsp := root.Child("decompose")
	ref := core.DecomposeT(query, k, tel)
	targets := db.Decomposed(k)
	dsp.Set("query_tracelets", int64(len(ref.Tracelets)))
	dsp.Set("corpus_functions", int64(len(targets)))
	dsp.End()
	opts.Trace = root.Child("scan")
	m := core.NewMatcher(opts)
	results := m.CompareMany(ref, targets)
	opts.Trace.End()
	hits := make([]Hit, len(results))
	for i := range results {
		hits[i] = Hit{Entry: db.Entries[i], Result: results[i]}
	}
	rsp := root.Child("rank")
	sort.SliceStable(hits, func(i, j int) bool {
		a, b := hits[i], hits[j]
		if a.Result.SimilarityScore != b.Result.SimilarityScore {
			return a.Result.SimilarityScore > b.Result.SimilarityScore
		}
		if a.Entry.Exe != b.Entry.Exe {
			return a.Entry.Exe < b.Entry.Exe
		}
		return a.Entry.Name < b.Entry.Name
	})
	rsp.End()
	qt.Stop()
	return hits
}

// gobDB is the serialized form.
type gobDB struct {
	Entries []*Entry
}

// Save serializes the database (entries only; decompositions are
// recomputed on demand).
func (db *DB) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(gobDB{Entries: db.Entries})
}

// Load restores a database written by Save.
func Load(r io.Reader) (*DB, error) {
	var g gobDB
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	return &DB{Entries: g.Entries, decomposed: make(map[int][]*core.Decomposed)}, nil
}
