// Package index implements the function database and search engine of the
// prototype (paper Section 5.2): executables are disassembled and lifted
// on ingest, decomposed into tracelets per requested k (cached), and a
// query function is compared against every indexed function in parallel.
// The database serializes with encoding/gob.
package index

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/idxfile"
	"repro/internal/minhash"
	"repro/internal/prep"
	"repro/internal/telemetry"
)

// Entry is one indexed binary function. For gob-backed databases Func
// holds the lifted function eagerly; for v3 store-backed databases Func
// is nil and the function is decoded from the columnar file on first
// use — always go through Function(), never read Func directly.
type Entry struct {
	Exe   string // executable name
	Name  string // recovered name (sub_XXX in stripped binaries)
	Addr  uint32
	Truth string // ground-truth source name, if known (evaluation only)
	Func  *prep.Function

	// v3 lazy backing (unexported: invisible to gob). src/srcIdx locate
	// the function in the columnar store; lazy memoizes the decode.
	src    *idxfile.File
	srcIdx int
	lazy   atomic.Pointer[prep.Function]
}

// Function returns the lifted function, decoding it from the columnar
// store on first use for v3-backed entries. Safe for concurrent callers;
// concurrent first calls may decode twice but agree on one result.
func (e *Entry) Function() *prep.Function {
	if e.Func != nil {
		return e.Func
	}
	if fn := e.lazy.Load(); fn != nil {
		return fn
	}
	if e.src == nil {
		return nil
	}
	fn := e.src.DecodeFunc(e.srcIdx)
	if e.lazy.CompareAndSwap(nil, fn) {
		return fn
	}
	return e.lazy.Load()
}

// DB is the searchable function database. Concurrent Search/Decomposed
// calls are safe; AddImage must not race with readers (ingest the corpus
// first, or build an immutable Snapshot for serving).
type DB struct {
	Entries []*Entry

	// Tel, when non-nil, receives index telemetry (corpus decomposition
	// latency) and is the default collector for Search when the query's
	// opts.Tel is nil. It is not serialized by Save.
	Tel *telemetry.Collector

	mu         sync.Mutex // guards decomposed, feats, fidx, lsh, lshBuilt
	decomposed map[int][]*core.Decomposed
	feats      [][]uint64 // per-entry prefilter features, aligned with Entries
	fidx       *featureIndex
	lsh        *lshIndex // lazy banded MinHash index; nil can mean "fall back"
	lshBuilt   bool      // lsh is authoritative (it may legitimately be nil)

	store  *idxfile.File // non-nil for v3 store-backed databases
	info   Info
	loaded bool // info.Version is authoritative (set by Load/OpenFile)
}

// Info describes where a database came from, for idxinfo, serve logs
// and the tracy_index_info metric.
type Info struct {
	Version int    // TRACYIDX format version (0-3)
	Bytes   int64  // on-disk size, 0 when unknown
	Path    string // source path, "" when loaded from a stream or built in memory
	Mapped  bool   // true when served from an mmap region
	Funcs   int
}

// Info returns the database provenance. For in-memory databases built
// with AddImage the version is the current gob format version.
func (db *DB) Info() Info {
	info := db.info
	if !db.loaded {
		info.Version = indexVersion
	}
	info.Funcs = len(db.Entries)
	return info
}

// Store returns the columnar file backing a v3 database, or nil.
func (db *DB) Store() *idxfile.File { return db.store }

// Close releases the columnar store mapping of a v3-backed database; it
// is a no-op for gob-backed databases. After Close the database must not
// be used. Long-lived servers never Close — they drop the reference and
// let the finalizer unmap once in-flight queries finish.
func (db *DB) Close() error {
	if db.store != nil {
		return db.store.Close()
	}
	return nil
}

// New returns an empty database.
func New() *DB {
	return &DB{decomposed: make(map[int][]*core.Decomposed)}
}

// AddImage lifts all functions of a (possibly stripped) ELF image and
// indexes them. truth maps function addresses to ground-truth names and
// may be nil.
func (db *DB) AddImage(exe string, img []byte, truth map[uint32]string) error {
	fns, err := prep.LiftImage(img)
	if err != nil {
		return fmt.Errorf("index: %s: %w", exe, err)
	}
	for _, fn := range fns {
		e := &Entry{Exe: exe, Name: fn.Name, Addr: fn.Addr, Func: fn}
		if truth != nil {
			e.Truth = truth[fn.Addr]
		}
		db.Entries = append(db.Entries, e)
	}
	db.mu.Lock()
	db.decomposed = make(map[int][]*core.Decomposed) // invalidate caches
	db.feats, db.fidx = nil, nil
	db.lsh, db.lshBuilt = nil, false
	db.mu.Unlock()
	return nil
}

// Len returns the number of indexed functions.
func (db *DB) Len() int { return len(db.Entries) }

// Decomposed returns the k-tracelet decomposition of every entry, cached
// per k and aligned with Entries. It is safe for concurrent use: the
// first caller for a given k computes (and the rest wait), after which
// lookups only take the mutex briefly.
func (db *DB) Decomposed(k int) []*core.Decomposed {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.decomposed == nil {
		db.decomposed = make(map[int][]*core.Decomposed)
	}
	if d, ok := db.decomposed[k]; ok {
		return d
	}
	d := make([]*core.Decomposed, len(db.Entries))
	for i, e := range db.Entries {
		d[i] = core.DecomposeT(e.Function(), k, db.Tel)
	}
	db.decomposed[k] = d
	return d
}

// features returns the per-entry prefilter feature sets, computing them
// once (or adopting the sets deserialized from a v2 index file).
func (db *DB) features() [][]uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.feats == nil {
		fs := make([][]uint64, len(db.Entries))
		for i, e := range db.Entries {
			if e.src != nil {
				// Store-backed entry: its feature set already lives in the
				// file's shared pool; the slice is a view into the mapping,
				// so this allocates a slice header only. Entries appended by
				// AddImage after a v3 load fall through to recomputation.
				fs[i] = e.src.Features(e.srcIdx)
			} else {
				fs[i] = FuncFeatures(e.Function())
			}
		}
		db.feats = fs
	}
	return db.feats
}

// prefilterIndex returns the inverted feature index, built lazily on the
// first prefiltered search.
func (db *DB) prefilterIndex() *featureIndex {
	fs := db.features()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.fidx == nil {
		db.fidx = buildFeatureIndex(fs)
	}
	return db.fidx
}

// lshIdx returns the banded MinHash index, built lazily on the first
// ModeLSH search: adopted from the v3 file's persisted LSHB signatures
// when the store still covers every entry, hashed from the feature sets
// under minhash.Default otherwise (in-memory corpora, or entries
// appended after a v3 load). A store-backed database whose file
// predates the LSHB section returns nil — callers fall back to the
// scan prefilter and count an lsh_fallbacks event.
func (db *DB) lshIdx() *lshIndex {
	db.mu.Lock()
	if db.lshBuilt {
		x := db.lsh
		db.mu.Unlock()
		return x
	}
	db.mu.Unlock()
	// Build outside the lock: lshFromFeatures needs db.features(), which
	// locks mu itself. Concurrent first calls may both build; one wins.
	var x *lshIndex
	if db.store != nil && len(db.Entries) == db.store.NumFuncs() {
		x = lshFromStore(db.store, db.Tel)
	} else {
		x = lshFromFeatures(minhash.Default, db.features(), db.Tel)
	}
	db.mu.Lock()
	if !db.lshBuilt {
		db.lsh, db.lshBuilt = x, true
	}
	x = db.lsh
	db.mu.Unlock()
	return x
}

// Hit is one search result.
type Hit struct {
	Entry  *Entry
	Result core.Result
}

// Search compares the query function against every entry, in parallel,
// and returns all hits ordered by similarity score (descending), with
// ties broken by executable and name for determinism.
//
// Telemetry: the query is counted and timed end-to-end into opts.Tel
// (falling back to db.Tel when opts.Tel is nil), and when opts.Trace is
// set the span gains "decompose", "scan" (one compare child per
// candidate) and "rank" children tracing the whole decision.
func (db *DB) Search(query *prep.Function, opts core.Options) []Hit {
	hits, _ := db.SearchCtx(context.Background(), query, opts, PrefilterOptions{})
	return hits
}

// SearchWith is Search with an explicit prefilter stage: when pf enables
// it, only the top-C corpus functions by shared prefilter features are
// compared exactly (a lossy cut — a true match sharing no features with
// the query is missed). The zero PrefilterOptions makes it identical to
// Search.
func (db *DB) SearchWith(query *prep.Function, opts core.Options, pf PrefilterOptions) []Hit {
	hits, _ := db.SearchCtx(context.Background(), query, opts, pf)
	return hits
}

// SearchCtx is SearchWith bounded by ctx: the comparison workers check
// it cooperatively and the search returns ctx.Err() — with nil hits —
// shortly after cancellation or deadline expiry. A Background (or nil)
// context adds no overhead and leaves results identical to SearchWith.
func (db *DB) SearchCtx(ctx context.Context, query *prep.Function, opts core.Options, pf PrefilterOptions) ([]Hit, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Tel == nil {
		opts.Tel = db.Tel
	}
	tel := opts.Tel
	tel.Inc(telemetry.Queries)
	qt := tel.StartTimer(telemetry.QueryLatency)
	root := opts.Trace
	k := opts.K
	if k <= 0 {
		k = 3 // mirror NewMatcher's default
	}
	dsp := root.Child("decompose")
	ref := core.DecomposeT(query, k, tel)
	targets := db.Decomposed(k)
	dsp.Set("query_tracelets", int64(len(ref.Tracelets)))
	dsp.Set("corpus_functions", int64(len(targets)))
	dsp.End()

	// Stage 1 (optional, lossy): rank corpus functions by shared features
	// and keep the top C for exact comparison.
	var ids []int32 // set iff the prefilter ran: hit i maps to entry ids[i]
	if c := pf.cap(); c > 0 {
		fsp := root.Child("prefilter")
		if pf.Mode == ModeLSH {
			if x := db.lshIdx(); x != nil {
				tel.Inc(telemetry.LSHQueries)
				ids = x.topCandidates(ctx, QueryFeatures(ref), c, tel)
				tel.Add(telemetry.LSHCandidates, uint64(len(ids)))
				fsp.Set("lsh", 1)
			} else {
				tel.Inc(telemetry.LSHFallbacks)
				ids = db.prefilterIndex().topCandidates(ctx, QueryFeatures(ref), c)
			}
		} else {
			ids = db.prefilterIndex().topCandidates(ctx, QueryFeatures(ref), c)
		}
		if err := ctx.Err(); err != nil {
			fsp.End()
			noteCtxErr(tel, err)
			qt.Stop()
			return nil, err
		}
		tel.Add(telemetry.PrefilterCandidates, uint64(len(ids)))
		fsp.Set("candidates", int64(len(ids)))
		fsp.Set("cap", int64(c))
		fsp.End()
		sub := make([]*core.Decomposed, len(ids))
		for i, id := range ids {
			sub[i] = targets[id]
		}
		targets = sub
	}

	// Stage 2 (exact): full tracelet comparison of the surviving targets.
	opts.Trace = root.Child("scan")
	m := core.NewMatcher(opts)
	results, err := m.CompareManyCtx(ctx, ref, targets)
	opts.Trace.End()
	if err != nil {
		noteCtxErr(tel, err)
		qt.Stop()
		return nil, err
	}
	hits := make([]Hit, len(results))
	for i := range results {
		ei := i
		if ids != nil {
			ei = int(ids[i])
		}
		hits[i] = Hit{Entry: db.Entries[ei], Result: results[i]}
	}
	rsp := root.Child("rank")
	SortHits(hits)
	rsp.End()
	qt.Stop()
	return hits, nil
}

// gobDB is the serialized form. Feats (since format v2) carries the
// per-entry prefilter feature sets so serving nodes skip recomputing
// them at load; v1 payloads simply decode with Feats nil and the sets
// are rebuilt lazily on the first prefiltered search.
type gobDB struct {
	Entries []*Entry
	Feats   [][]uint64
}

// The on-disk format is an 8-byte magic plus a one-byte format version in
// front of the payload, so a stale or foreign file fails fast with a
// versioned error instead of an opaque decode failure. Four formats load:
// headerless v0 gob, headered v1 gob (no prefilter features), v2 gob
// (with features), and the v3 columnar format (internal/idxfile). Save
// writes v2 gob; SaveV3 writes the columnar format.
const (
	indexMagic     = "TRACYIDX"
	indexVersion   = 2 // gob format written by Save
	indexVersionV3 = idxfile.Version
)

// Save serializes the database as v2 gob (entries plus prefilter
// features; decompositions are recomputed on demand), prefixed with the
// format header. Store-backed entries are materialized first so the gob
// payload is self-contained.
func (db *DB) Save(w io.Writer) error {
	if db.store != nil {
		for _, e := range db.Entries {
			if e.Func == nil {
				e.Func = e.Function()
			}
		}
	}
	hdr := append([]byte(indexMagic), indexVersion)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(gobDB{Entries: db.Entries, Feats: db.features()})
}

// SaveV3 serializes the database in the v3 columnar format: fixed-width
// column arrays behind a section directory, loadable via mmap with no
// whole-file deserialization (see internal/idxfile). Functions stream
// through an incremental builder, so converting a store-backed database
// never materializes the whole corpus at once.
func (db *DB) SaveV3(w io.Writer) error { return db.saveV3(w, nil) }

// SaveV3LSH is SaveV3 with an LSHB section: every function's MinHash
// signature under p is computed during the streaming build and
// persisted, so serving nodes adopt the signatures straight from the
// mapping instead of re-hashing a million feature sets at first query.
func (db *DB) SaveV3LSH(w io.Writer, p minhash.Params) error { return db.saveV3(w, &p) }

func (db *DB) saveV3(w io.Writer, lsh *minhash.Params) error {
	feats := db.features()
	b := idxfile.NewBuilder()
	if lsh != nil {
		b.SetLSH(*lsh)
	}
	for i, e := range db.Entries {
		var fn *prep.Function
		if e.Func != nil {
			fn = e.Func
		} else if e.src != nil {
			// Decode without populating the entry's lazy cache: a convert
			// pass must not pin the whole corpus on the heap.
			fn = e.src.DecodeFunc(e.srcIdx)
		}
		if fn == nil {
			return fmt.Errorf("index: entry %d has no function to serialize", i)
		}
		b.Add(e.Exe, fn, e.Truth, feats[i])
	}
	_, err := b.WriteTo(w)
	return err
}

// Load restores a database written by Save or SaveV3. It accepts all
// four formats: headerless v0 gob, headered v1 gob (prefilter features
// recomputed on demand), v2 gob, and the v3 columnar format (read fully
// into memory — prefer OpenFile for v3 files, which maps them instead).
// Anything else — a future format version or a file that is not a tracy
// index at all — yields an error naming the expected formats.
func Load(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	version := 0
	if peek, err := br.Peek(len(indexMagic) + 1); err == nil && string(peek[:len(indexMagic)]) == indexMagic {
		v := int(peek[len(indexMagic)])
		switch v {
		case 1, indexVersion:
			version = v
			if _, err := br.Discard(len(indexMagic) + 1); err != nil {
				return nil, err
			}
		case indexVersionV3:
			// The columnar parser needs the whole prelude, magic included.
			data, err := io.ReadAll(br)
			if err != nil {
				return nil, err
			}
			f, err := idxfile.Parse(data)
			if err != nil {
				return nil, fmt.Errorf("index: %w", err)
			}
			return fromStore(f), nil
		default:
			return nil, fmt.Errorf("index: format v%d/v%d expected, file is v%d (rebuild with tracy index)", indexVersion, indexVersionV3, v)
		}
	}
	var g gobDB
	if err := gob.NewDecoder(br).Decode(&g); err != nil {
		return nil, fmt.Errorf("index: not a tracy index (format v%d/v%d expected): %w", indexVersion, indexVersionV3, err)
	}
	// Structural validation: gob will happily decode a payload whose
	// entries are nil, missing their lifted function, or carrying a
	// control-flow graph with out-of-range successor indices — any of
	// which would panic the first Search or Decomposed call. Reject such
	// files here, where the caller still has an error path.
	for i, e := range g.Entries {
		if e == nil {
			return nil, fmt.Errorf("index: corrupt entry %d (missing lifted function)", i)
		}
		if err := ValidateFunction(e.Func); err != nil {
			return nil, fmt.Errorf("index: corrupt entry %d (%v)", i, err)
		}
	}
	db := &DB{
		Entries:    g.Entries,
		decomposed: make(map[int][]*core.Decomposed),
		info:       Info{Version: version},
		loaded:     true,
	}
	// Adopt serialized prefilter features only when they line up with the
	// entries — a fuzzed or hand-edited payload must not smuggle in a
	// misaligned feature table (features() rebuilds from scratch instead).
	if g.Feats != nil && len(g.Feats) == len(g.Entries) {
		db.feats = g.Feats
	}
	return db, nil
}

// fromStore wraps a parsed columnar file as a database: entry metadata
// is materialized eagerly (it is tiny and every search ranks by it), the
// function bodies stay in the file and decode lazily per entry.
func fromStore(f *idxfile.File) *DB {
	n := f.NumFuncs()
	entries := make([]*Entry, n)
	for i := 0; i < n; i++ {
		m := f.Meta(i)
		entries[i] = &Entry{Exe: m.Exe, Name: m.Name, Addr: m.Addr, Truth: m.Truth, src: f, srcIdx: i}
	}
	return &DB{
		Entries:    entries,
		decomposed: make(map[int][]*core.Decomposed),
		store:      f,
		info: Info{
			Version: indexVersionV3,
			Bytes:   f.Size(),
			Path:    f.Path(),
			Mapped:  f.Mapped(),
		},
		loaded: true,
	}
}

// OpenFile loads an index from disk by path, picking the cheapest route
// for its format: v3 columnar files are mmapped (page-granular lazy
// access, pages shared across processes, no heap deserialization), gob
// files fall back to the streaming Load. Callers that serve long-lived
// snapshots should not Close the returned database while queries run.
func OpenFile(path string) (*DB, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	prelude := make([]byte, len(indexMagic)+1)
	n, _ := io.ReadFull(fd, prelude)
	if n == len(prelude) && idxfile.SniffVersion(prelude) == indexVersionV3 {
		fd.Close()
		f, err := idxfile.Open(path)
		if err != nil {
			return nil, fmt.Errorf("index: %w", err)
		}
		return fromStore(f), nil
	}
	if _, err := fd.Seek(0, io.SeekStart); err != nil {
		fd.Close()
		return nil, err
	}
	defer fd.Close()
	st, _ := fd.Stat()
	db, err := Load(fd)
	if err != nil {
		return nil, err
	}
	db.info.Path = path
	if st != nil {
		db.info.Bytes = st.Size()
	}
	return db, nil
}
