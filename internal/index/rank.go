package index

import "sort"

// hitLess is the canonical result order: similarity score descending,
// ties broken by executable then function name so rankings are
// deterministic across runs, shards and processes.
func hitLess(a, b Hit) bool {
	if a.Result.SimilarityScore != b.Result.SimilarityScore {
		return a.Result.SimilarityScore > b.Result.SimilarityScore
	}
	if a.Entry.Exe != b.Entry.Exe {
		return a.Entry.Exe < b.Entry.Exe
	}
	return a.Entry.Name < b.Entry.Name
}

// SortHits orders hits in the canonical result order (see hitLess). Both
// DB.Search and Snapshot.Search rank with it, which is what makes their
// outputs comparable hit for hit.
func SortHits(hits []Hit) {
	sort.SliceStable(hits, func(i, j int) bool { return hitLess(hits[i], hits[j]) })
}

// TopK filters sorted-or-unsorted hits down to the ones worth returning:
// hits scoring below minScore are dropped, the rest are put in canonical
// order, and at most limit survive (limit <= 0 keeps all). The input
// slice is not modified.
func TopK(hits []Hit, limit int, minScore float64) []Hit {
	kept := make([]Hit, 0, len(hits))
	for _, h := range hits {
		if h.Result.SimilarityScore >= minScore {
			kept = append(kept, h)
		}
	}
	SortHits(kept)
	if limit > 0 && len(kept) > limit {
		kept = kept[:limit]
	}
	return kept
}
