package index

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/minhash"
	"repro/internal/tinyc"
)

// BenchmarkSnapshotSearchLSH compares the two candidate generators at an
// equal cap: the O(n) feature-scan ranking against the banded MinHash
// bucket probe. The exact-comparison stage downstream is identical, so
// the delta is pure candidate-generation cost.
func BenchmarkSnapshotSearchLSH(b *testing.B) {
	db := benchCorpusDB(b)
	snap := BuildSnapshot(db, []int{3}, 0)
	ref := core.Decompose(benchQuery(b, db), 3)

	for _, bc := range []struct {
		name string
		mode PrefilterMode
	}{
		{"scan", ModeScan},
		{"lsh", ModeLSH},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := core.DefaultOptions()
			pf := PrefilterOptions{Enabled: true, Candidates: 20, Mode: bc.mode}
			// Pay the lazy signature build before the clock starts.
			if _, err := snap.SearchDecomposedWith(ref, opts, pf); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hits, err := snap.SearchDecomposedWith(ref, opts, pf)
				if err != nil {
					b.Fatal(err)
				}
				if len(hits) == 0 {
					b.Fatal("no hits")
				}
			}
		})
	}
}

var lshReport = os.Getenv("BENCH_LSH_REPORT")

// quantile returns the q-quantile (0..1) of ds by nearest rank.
func quantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// TestLSHBenchReport is the experiment behind BENCH_lsh.json: a
// campaign-built corpus (default 20k functions) persisted with LSHB and
// mmap-served, then queried uncached through both candidate generators
// at an equal cap. It records candidate-generation and end-to-end
// search p50/p99 plus recall@10 against the exhaustive ranking, and
// asserts the headline claims: >= 5x faster candidate generation with
// recall@10 >= 0.9. Run with
//
//	BENCH_LSH_REPORT=BENCH_lsh.json go test -run TestLSHBenchReport -timeout 30m ./internal/index/
//
// BENCH_LSH_FUNCS overrides the corpus size.
func TestLSHBenchReport(t *testing.T) {
	if lshReport == "" {
		t.Skip("set BENCH_LSH_REPORT=path to write the report")
	}
	if testing.Short() {
		t.Skip("timing report; skipped in -short mode")
	}
	size := 20_000
	if s := os.Getenv("BENCH_LSH_FUNCS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad BENCH_LSH_FUNCS %q", s)
		}
		size = n
	}
	ccfg := corpus.CampaignConfig{Seed: 7, Funcs: size, FuncsPerExe: 32, Stmts: 10}
	db := New()
	t0 := time.Now()
	total, err := corpus.RunCampaign(ccfg, func(e corpus.Executable, _ tinyc.OptLevel) error {
		return db.AddImage(e.Name, e.Image, e.Truth)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("campaign built %d functions in %.1fs", total, time.Since(t0).Seconds())

	p := minhash.Default
	if s := os.Getenv("BENCH_LSH_PARAMS"); s != "" { // "bands,rows" override for (b,r) tuning sweeps
		if _, err := fmt.Sscanf(s, "%d,%d", &p.Bands, &p.Rows); err != nil || !p.Valid() {
			t.Fatalf("bad BENCH_LSH_PARAMS %q", s)
		}
	}

	path := filepath.Join(t.TempDir(), "lsh.v3")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveV3LSH(f, p); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !db2.Store().HasLSH() {
		t.Fatal("persisted index carries no LSHB")
	}
	snap := BuildSnapshot(db2, []int{3}, 0)
	opts := core.DefaultOptions()
	ctx := context.Background()

	// Queries spread evenly across the corpus; the same refs drive both
	// generators so the comparison is paired. The candidate cap scales
	// with the corpus (1 in 10 functions, floor 200): a fixed small cap
	// starves recall@10 for BOTH generators once the corpus dwarfs it,
	// which would measure cap starvation rather than generator quality.
	const nQueries, reps = 10, 5
	cap := size / 10
	if cap < 200 {
		cap = 200
	}
	var refs []*core.Decomposed
	for i := 0; i < nQueries; i++ {
		e := db2.Entries[i*db2.Len()/nQueries]
		refs = append(refs, core.Decompose(e.Function(), 3))
	}

	// Ground truth per query: the exhaustive full-scan 10th-best score.
	// The generated corpus is full of score ties, so recall@10 is
	// tie-aware — a prefiltered hit counts when it scores at least as
	// well as the exhaustive rank-10 hit, the same verdict exhaustive
	// search itself would have tie-broken arbitrarily.
	tenth := make([]float64, len(refs))
	for i, ref := range refs {
		hits, err := snap.SearchDecomposedCtx(ctx, ref, opts, PrefilterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		top := TopK(hits, 10, 0)
		if len(top) < 10 {
			t.Fatalf("query %d: exhaustive search returned only %d hits", i, len(top))
		}
		tenth[i] = top[len(top)-1].Result.SimilarityScore
	}

	type sample struct {
		gen    []time.Duration // candidate generation only
		search []time.Duration // full two-stage search
		recall float64
	}
	measure := func(mode PrefilterMode) sample {
		var s sample
		pf := PrefilterOptions{Enabled: true, Candidates: cap, Mode: mode}
		kept, want := 0, 0
		for qi, ref := range refs {
			for r := 0; r < reps; r++ {
				g0 := time.Now()
				if _, err := snap.PrefilterRankWith(ctx, ref, cap, mode); err != nil {
					t.Fatal(err)
				}
				s.gen = append(s.gen, time.Since(g0))
				s0 := time.Now()
				hits, err := snap.SearchDecomposedWith(ref, opts, pf)
				if err != nil {
					t.Fatal(err)
				}
				s.search = append(s.search, time.Since(s0))
				if r == 0 {
					for _, h := range TopK(hits, 10, 0) {
						if h.Result.SimilarityScore >= tenth[qi] {
							kept++
						}
					}
					want += 10
				}
			}
		}
		s.recall = float64(kept) / float64(want)
		return s
	}

	// One throwaway pass pays the lazy signature adoption and page-ins.
	if _, err := snap.PrefilterRankWith(ctx, refs[0], cap, ModeLSH); err != nil {
		t.Fatal(err)
	}
	scan := measure(ModeScan)
	lsh := measure(ModeLSH)

	genSpeedup := float64(quantile(scan.gen, 0.5)) / float64(quantile(lsh.gen, 0.5))
	searchSpeedup := float64(quantile(scan.search, 0.5)) / float64(quantile(lsh.search, 0.5))
	report := map[string]any{
		"benchmark":            fmt.Sprintf("uncached candidate generation + search, scan vs lsh, cap %d, %d queries x %d reps", cap, nQueries, reps),
		"corpus_functions":     db2.Len(),
		"lsh_bands":            p.Bands,
		"lsh_rows":             p.Rows,
		"candidate_cap":        cap,
		"scan_gen_p50_ms":      ms(quantile(scan.gen, 0.5)),
		"scan_gen_p99_ms":      ms(quantile(scan.gen, 0.99)),
		"lsh_gen_p50_ms":       ms(quantile(lsh.gen, 0.5)),
		"lsh_gen_p99_ms":       ms(quantile(lsh.gen, 0.99)),
		"gen_speedup_p50_x":    genSpeedup,
		"scan_search_p50_ms":   ms(quantile(scan.search, 0.5)),
		"scan_search_p99_ms":   ms(quantile(scan.search, 0.99)),
		"lsh_search_p50_ms":    ms(quantile(lsh.search, 0.5)),
		"lsh_search_p99_ms":    ms(quantile(lsh.search, 0.99)),
		"search_speedup_p50_x": searchSpeedup,
		"scan_recall_at_10":    scan.recall,
		"lsh_recall_at_10":     lsh.recall,
		"gomaxprocs":           runtime.GOMAXPROCS(0),
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lshReport, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: gen p50 scan %.2fms vs lsh %.2fms (%.1fx), search p50 %.1fms vs %.1fms (%.1fx), recall@10 scan %.2f lsh %.2f",
		lshReport, ms(quantile(scan.gen, 0.5)), ms(quantile(lsh.gen, 0.5)), genSpeedup,
		ms(quantile(scan.search, 0.5)), ms(quantile(lsh.search, 0.5)), searchSpeedup,
		scan.recall, lsh.recall)
	if genSpeedup < 5 {
		t.Errorf("lsh candidate generation only %.1fx faster than scan at p50, want >= 5x", genSpeedup)
	}
	if lsh.recall < 0.9 {
		t.Errorf("lsh recall@10 = %.2f, want >= 0.9", lsh.recall)
	}
}
