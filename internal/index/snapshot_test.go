package index

import (
	"bytes"
	"encoding/gob"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

func TestSnapshotSearchMatchesDBSearch(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	want := db.Search(query, core.DefaultOptions())
	for _, shards := range []int{1, 3, 0} {
		snap := BuildSnapshot(db, []int{3}, shards)
		got, err := snap.Search(query, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d hits, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i].Entry != want[i].Entry {
				t.Errorf("shards=%d hit %d: %s/%s, want %s/%s", shards, i,
					got[i].Entry.Exe, got[i].Entry.Name, want[i].Entry.Exe, want[i].Entry.Name)
			}
			if got[i].Result.SimilarityScore != want[i].Result.SimilarityScore {
				t.Errorf("shards=%d hit %d: score %v, want %v", shards, i,
					got[i].Result.SimilarityScore, want[i].Result.SimilarityScore)
			}
		}
	}
}

func TestSnapshotUnsupportedK(t *testing.T) {
	db, _ := buildTestDB(t)
	snap := BuildSnapshot(db, []int{3}, 2)
	query := queryFor(t, db, corpus.LibFuncName)
	opts := core.DefaultOptions()
	opts.K = 2
	if _, err := snap.Search(query, opts); err == nil {
		t.Fatal("k=2 search against a k=3 snapshot should fail")
	}
	if !snap.SupportsK(3) || snap.SupportsK(2) {
		t.Errorf("SupportsK wrong: ks=%v", snap.Ks())
	}
}

func TestSnapshotLookup(t *testing.T) {
	db, _ := buildTestDB(t)
	snap := BuildSnapshot(db, []int{3}, 0)
	e := db.Entries[len(db.Entries)/2]
	if got := snap.Lookup(e.Exe, e.Name); got != e {
		t.Errorf("Lookup(%s, %s) = %v, want %v", e.Exe, e.Name, got, e)
	}
	if got := snap.Lookup("nope", "nothing"); got != nil {
		t.Errorf("Lookup of absent function = %v, want nil", got)
	}
}

func TestTopK(t *testing.T) {
	mk := func(exe, name string, score float64) Hit {
		return Hit{Entry: &Entry{Exe: exe, Name: name}, Result: core.Result{SimilarityScore: score}}
	}
	hits := []Hit{
		mk("b", "y", 0.5), mk("a", "z", 0.9), mk("a", "x", 0.5), mk("c", "w", 0.1),
	}
	got := TopK(hits, 3, 0.2)
	if len(got) != 3 {
		t.Fatalf("got %d hits, want 3", len(got))
	}
	// 0.9 first, then the two 0.5s tie-broken by exe/name; 0.1 filtered.
	if got[0].Entry.Name != "z" || got[1].Entry.Exe != "a" || got[2].Entry.Exe != "b" {
		t.Errorf("wrong order: %v %v %v", got[0].Entry, got[1].Entry, got[2].Entry)
	}
	if n := len(TopK(hits, 0, 0)); n != 4 {
		t.Errorf("limit 0 kept %d, want all 4", n)
	}
	// The input must not be reordered.
	if hits[0].Entry.Name != "y" {
		t.Error("TopK mutated its input")
	}
}

// TestConcurrentDBSearch drives the library API from many goroutines
// with a cold decomposition cache — the exact access pattern that raced
// before db.decomposed was mutex-guarded. Run under -race.
func TestConcurrentDBSearch(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	want := db.Search(query, core.DefaultOptions())

	fresh, err := Load(saved(t, db))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	results := make([][]Hit, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := core.DefaultOptions()
			if w%2 == 1 {
				opts.K = 2 // populate a second k concurrently
			}
			results[w] = fresh.Search(queryFor(t, fresh, corpus.LibFuncName), opts)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w += 2 { // k=3 searches must agree with offline
		if len(results[w]) != len(want) {
			t.Fatalf("worker %d: %d hits, want %d", w, len(results[w]), len(want))
		}
		for i := range want {
			if results[w][i].Result.SimilarityScore != want[i].Result.SimilarityScore {
				t.Errorf("worker %d hit %d: score %v, want %v", w, i,
					results[w][i].Result.SimilarityScore, want[i].Result.SimilarityScore)
			}
		}
	}
}

func TestConcurrentSnapshotSearch(t *testing.T) {
	db, _ := buildTestDB(t)
	snap := BuildSnapshot(db, []int{3}, 4)
	query := queryFor(t, db, corpus.LibFuncName)
	want, err := snap.Search(query, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := snap.Search(query, core.DefaultOptions())
			if err != nil {
				t.Error(err)
				return
			}
			for i := range want {
				if got[i].Entry != want[i].Entry {
					t.Errorf("hit %d diverged under concurrency", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// saved round-trips db through Save into a reader.
func saved(t *testing.T, db *DB) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestSaveWritesHeader(t *testing.T) {
	db, _ := buildTestDB(t)
	buf := saved(t, db)
	if !bytes.HasPrefix(buf.Bytes(), []byte(indexMagic)) {
		t.Fatalf("saved index does not start with %q", indexMagic)
	}
	if v := buf.Bytes()[len(indexMagic)]; v != indexVersion {
		t.Errorf("header version %d, want %d", v, indexVersion)
	}
}

// TestLoadHeaderlessV0: files written before the header existed are a
// bare gob stream and must still load.
func TestLoadHeaderlessV0(t *testing.T) {
	db, _ := buildTestDB(t)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobDB{Entries: db.Entries}); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatalf("headerless v0 load: %v", err)
	}
	if db2.Len() != db.Len() {
		t.Errorf("v0 load: %d entries, want %d", db2.Len(), db.Len())
	}
}

func TestLoadFutureVersion(t *testing.T) {
	data := append([]byte(indexMagic), 9)
	data = append(data, []byte("whatever follows")...)
	_, err := Load(bytes.NewReader(data))
	if err == nil {
		t.Fatal("future-version file should fail to load")
	}
	if !strings.Contains(err.Error(), "format v2/v3 expected") || !strings.Contains(err.Error(), "v9") {
		t.Errorf("unhelpful version error: %v", err)
	}
}

func TestLoadForeignFileError(t *testing.T) {
	_, err := Load(bytes.NewReader([]byte("PK\x03\x04 this is a zip, not an index")))
	if err == nil {
		t.Fatal("foreign file should fail to load")
	}
	if !strings.Contains(err.Error(), "format v2/v3 expected") {
		t.Errorf("foreign-file error does not name the expected format: %v", err)
	}
}
