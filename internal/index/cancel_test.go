package index

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/telemetry"
)

// TestSearchCtxCancelled: a pre-cancelled context aborts every search
// path (DB exhaustive, DB prefiltered, snapshot sharded, snapshot
// prefiltered, prefilter-rank) with context.Canceled and nil hits, and
// the abort is counted in telemetry.
func TestSearchCtxCancelled(t *testing.T) {
	db, _ := buildTestDB(t)
	tel := telemetry.New()
	db.Tel = tel
	query := queryFor(t, db, corpus.LibFuncName)
	snap := BuildSnapshot(db, []int{3}, 3)
	ref := core.Decompose(query, 3)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	paths := []struct {
		name string
		run  func() ([]Hit, error)
	}{
		{"db", func() ([]Hit, error) {
			return db.SearchCtx(ctx, query, core.DefaultOptions(), PrefilterOptions{})
		}},
		{"db-prefilter", func() ([]Hit, error) {
			return db.SearchCtx(ctx, query, core.DefaultOptions(), PrefilterOptions{Enabled: true})
		}},
		{"snapshot", func() ([]Hit, error) {
			return snap.SearchCtx(ctx, query, core.DefaultOptions())
		}},
		{"snapshot-prefilter", func() ([]Hit, error) {
			return snap.SearchDecomposedCtx(ctx, ref, core.DefaultOptions(), PrefilterOptions{Enabled: true})
		}},
	}
	for _, p := range paths {
		hits, err := p.run()
		if err != context.Canceled {
			t.Errorf("%s: err = %v, want context.Canceled", p.name, err)
		}
		if hits != nil {
			t.Errorf("%s: cancelled search returned %d hits, want nil", p.name, len(hits))
		}
	}
	if _, err := snap.PrefilterRank(ctx, ref, 10); err != context.Canceled {
		t.Errorf("PrefilterRank: err = %v, want context.Canceled", err)
	}
	if n := tel.Snapshot().Counters["searches_cancelled"]; n < uint64(len(paths)) {
		t.Errorf("searches_cancelled = %d, want >= %d", n, len(paths))
	}
}

// TestSearchCtxDeadline: an already-expired deadline yields
// context.DeadlineExceeded and bumps searches_deadline (not
// searches_cancelled).
func TestSearchCtxDeadline(t *testing.T) {
	db, _ := buildTestDB(t)
	tel := telemetry.New()
	db.Tel = tel
	query := queryFor(t, db, corpus.LibFuncName)
	snap := BuildSnapshot(db, []int{3}, 2)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := snap.SearchCtx(ctx, query, core.DefaultOptions()); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	s := tel.Snapshot()
	if s.Counters["searches_deadline"] == 0 {
		t.Error("searches_deadline not counted")
	}
	if s.Counters["searches_cancelled"] != 0 {
		t.Errorf("searches_cancelled = %d, want 0", s.Counters["searches_cancelled"])
	}
}

// TestSearchCtxBackgroundIdentical: SearchCtx with a background context
// is hit-for-hit identical to the legacy Search entry points.
func TestSearchCtxBackgroundIdentical(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	snap := BuildSnapshot(db, []int{3}, 3)

	want := db.Search(query, core.DefaultOptions())
	got, err := snap.SearchCtx(context.Background(), query, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d hits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Entry != want[i].Entry || got[i].Result.SimilarityScore != want[i].Result.SimilarityScore {
			t.Errorf("hit %d: %s/%s %v, want %s/%s %v", i,
				got[i].Entry.Exe, got[i].Entry.Name, got[i].Result.SimilarityScore,
				want[i].Entry.Exe, want[i].Entry.Name, want[i].Result.SimilarityScore)
		}
	}
}

// TestSearchCtxMidflightCancel: cancelling while the search is running
// makes it return promptly with a context error instead of finishing
// the full corpus scan.
func TestSearchCtxMidflightCancel(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	snap := BuildSnapshot(db, []int{3}, 2)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	// The corpus is small, so the search may legitimately finish before
	// the cancel lands; both outcomes are fine — what must not happen is
	// a hang or a non-context error.
	hits, err := snap.SearchCtx(ctx, query, core.DefaultOptions())
	if err != nil && err != context.Canceled {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
	if err != nil && hits != nil {
		t.Error("errored search also returned hits")
	}
}

// TestPrefilterRankDeterministic: PrefilterRank is deterministic and
// ranks the query's own entry at a plausible position (it shares all of
// its features with itself).
func TestPrefilterRankDeterministic(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	snap := BuildSnapshot(db, []int{3}, 2)
	ref := core.Decompose(query, 3)

	a, err := snap.PrefilterRank(context.Background(), ref, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := snap.PrefilterRank(context.Background(), ref, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no ranked candidates for an in-corpus query")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic rank lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic rank at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Shared > a[i-1].Shared {
			t.Fatalf("rank order violated at %d: %+v after %+v", i, a[i], a[i-1])
		}
	}
}
