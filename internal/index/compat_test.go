package index

import (
	"bytes"
	"context"
	"encoding/gob"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/minhash"
	"repro/internal/telemetry"
)

// encodeVersion serializes db in any historical TRACYIDX format.
func encodeVersion(t *testing.T, db *DB, version int) []byte {
	t.Helper()
	var buf bytes.Buffer
	switch version {
	case 0: // headerless gob
		if err := gob.NewEncoder(&buf).Encode(gobDB{Entries: db.Entries}); err != nil {
			t.Fatal(err)
		}
	case 1: // header + entries-only gob
		buf.Write(append([]byte(indexMagic), 1))
		type gobDBv1 struct{ Entries []*Entry }
		if err := gob.NewEncoder(&buf).Encode(gobDBv1{Entries: db.Entries}); err != nil {
			t.Fatal(err)
		}
	case 2:
		if err := db.Save(&buf); err != nil {
			t.Fatal(err)
		}
	case 3:
		if err := db.SaveV3(&buf); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("no encoder for v%d", version)
	}
	return buf.Bytes()
}

// hitKey strips the entry pointer out of a Hit so results from different
// loads of the same corpus compare by value.
type hitKey struct {
	Exe, Name, Truth string
	Addr             uint32
	Result           core.Result
}

func hitKeys(hits []Hit) []hitKey {
	out := make([]hitKey, len(hits))
	for i, h := range hits {
		out[i] = hitKey{h.Entry.Exe, h.Entry.Name, h.Entry.Truth, h.Entry.Addr, h.Result}
	}
	return out
}

// TestCrossVersionSearchParity: the same corpus serialized as v0, v1, v2
// and v3 must load and produce bit-identical Snapshot.Search results —
// exhaustive and prefiltered — through both the stream loader and the
// file opener. This is the compatibility contract tracy convert depends
// on.
func TestCrossVersionSearchParity(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	opts := core.DefaultOptions()

	baseSnap := BuildSnapshot(db, []int{opts.K}, 4)
	baseHits, err := baseSnap.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := hitKeys(baseHits)
	basePre, err := baseSnap.SearchDecomposedWith(core.Decompose(query, opts.K), opts, PrefilterOptions{Enabled: true, Candidates: 7})
	if err != nil {
		t.Fatal(err)
	}
	preBase := hitKeys(basePre)

	dir := t.TempDir()
	for _, version := range []int{0, 1, 2, 3} {
		data := encodeVersion(t, db, version)
		path := filepath.Join(dir, "idx")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		loaders := map[string]func() (*DB, error){
			"Load":     func() (*DB, error) { return Load(bytes.NewReader(data)) },
			"OpenFile": func() (*DB, error) { return OpenFile(path) },
		}
		for lname, load := range loaders {
			db2, err := load()
			if err != nil {
				t.Fatalf("v%d %s: %v", version, lname, err)
			}
			if db2.Len() != db.Len() {
				t.Fatalf("v%d %s: %d entries, want %d", version, lname, db2.Len(), db.Len())
			}
			if got := db2.Info().Version; got != version {
				t.Errorf("v%d %s: Info().Version = %d", version, lname, got)
			}
			snap := BuildSnapshot(db2, []int{opts.K}, 4)
			hits, err := snap.Search(query, opts)
			if err != nil {
				t.Fatalf("v%d %s search: %v", version, lname, err)
			}
			if !reflect.DeepEqual(hitKeys(hits), base) {
				t.Errorf("v%d %s: Snapshot.Search diverged from in-memory results", version, lname)
			}
			pre, err := snap.SearchDecomposedWith(core.Decompose(query, opts.K), opts, PrefilterOptions{Enabled: true, Candidates: 7})
			if err != nil {
				t.Fatalf("v%d %s prefiltered search: %v", version, lname, err)
			}
			if !reflect.DeepEqual(hitKeys(pre), preBase) {
				t.Errorf("v%d %s: prefiltered Snapshot.Search diverged", version, lname)
			}
			// Offline DB.Search must agree too.
			off := db2.Search(query, opts)
			if !reflect.DeepEqual(hitKeys(off), base) {
				t.Errorf("v%d %s: DB.Search diverged from snapshot results", version, lname)
			}
			db2.Close()
		}
	}
}

// TestV3WithoutLSHBFallsBack: a v3 file written before the LSHB section
// existed still loads and serves scan searches bit-identically, and a
// ModeLSH request against it degrades to the scan prefilter — a counted
// lsh_fallbacks telemetry event, never an error. A file that does carry
// LSHB must serve lsh queries without any fallback, and its extra
// section must not perturb scan results.
func TestV3WithoutLSHBFallsBack(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	opts := core.DefaultOptions()
	pfScan := PrefilterOptions{Enabled: true, Candidates: 7}
	pfLSH := PrefilterOptions{Enabled: true, Candidates: 7, Mode: ModeLSH}

	var plain, signed bytes.Buffer
	if err := db.SaveV3(&plain); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveV3LSH(&signed, minhash.Default); err != nil {
		t.Fatal(err)
	}

	load := func(data []byte) (*DB, *Snapshot, *telemetry.Collector) {
		t.Helper()
		db2, err := Load(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		tel := telemetry.New()
		db2.Tel = tel
		return db2, BuildSnapshot(db2, []int{opts.K}, 4), tel
	}

	dbPlain, snapPlain, telPlain := load(plain.Bytes())
	dbSigned, snapSigned, telSigned := load(signed.Bytes())
	if dbPlain.Store().HasLSH() {
		t.Fatal("SaveV3 output unexpectedly carries LSHB")
	}
	if !dbSigned.Store().HasLSH() {
		t.Fatal("SaveV3LSH output carries no LSHB")
	}

	ref := core.Decompose(query, opts.K)
	scanPlain, err := snapPlain.SearchDecomposedWith(ref, opts, pfScan)
	if err != nil {
		t.Fatal(err)
	}
	scanSigned, err := snapSigned.SearchDecomposedWith(ref, opts, pfScan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hitKeys(scanPlain), hitKeys(scanSigned)) {
		t.Error("LSHB section changed scan-mode results")
	}

	// ModeLSH against the unsigned file: same answer as scan, no error,
	// one counted fallback.
	lshPlain, err := snapPlain.SearchDecomposedWith(ref, opts, pfLSH)
	if err != nil {
		t.Fatalf("lsh search against a pre-LSHB file must not error: %v", err)
	}
	if !reflect.DeepEqual(hitKeys(lshPlain), hitKeys(scanPlain)) {
		t.Error("lsh fallback diverged from the scan prefilter")
	}
	if got := telPlain.Get(telemetry.LSHFallbacks); got == 0 {
		t.Error("fallback was not counted in lsh_fallbacks")
	}
	if got := telPlain.Get(telemetry.LSHQueries); got != 0 {
		t.Errorf("fallback counted as a served lsh query (lsh_queries = %d)", got)
	}

	// ModeLSH against the signed file: served from the persisted
	// signatures, no fallback.
	if _, err := snapSigned.SearchDecomposedWith(ref, opts, pfLSH); err != nil {
		t.Fatal(err)
	}
	if got := telSigned.Get(telemetry.LSHFallbacks); got != 0 {
		t.Errorf("signed file fell back %d times", got)
	}
	if got := telSigned.Get(telemetry.LSHQueries); got != 1 {
		t.Errorf("lsh_queries = %d, want 1", got)
	}

	// The degraded ranking path falls back the same way.
	if _, err := snapPlain.PrefilterRankWith(context.Background(), ref, 5, ModeLSH); err != nil {
		t.Fatalf("PrefilterRankWith on a pre-LSHB file must not error: %v", err)
	}
}

// TestV3RoundTripEntries: converting to v3 and loading back preserves
// every entry field-for-field, including lazily decoded function bodies.
func TestV3RoundTripEntries(t *testing.T) {
	db, _ := buildTestDB(t)
	var buf bytes.Buffer
	if err := db.SaveV3(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if db2.Store() == nil {
		t.Fatal("v3 load did not retain the columnar store")
	}
	for i, e := range db.Entries {
		e2 := db2.Entries[i]
		if e2.Exe != e.Exe || e2.Name != e.Name || e2.Addr != e.Addr || e2.Truth != e.Truth {
			t.Errorf("entry %d metadata changed: %+v", i, e2)
		}
		if e2.Func != nil {
			t.Fatalf("entry %d eagerly materialized; v3 entries must decode lazily", i)
		}
		if !reflect.DeepEqual(e2.Function(), e.Function()) {
			t.Errorf("entry %d function body changed across v3 round trip", i)
		}
	}
	// Feature sets must be adopted from the file's pool, not recomputed.
	want := db.features()
	got := db2.features()
	if !reflect.DeepEqual(got, want) {
		t.Error("v3 feature pool diverged from computed features")
	}
}

// TestOpenFileMmap: OpenFile maps v3 files and reports provenance.
func TestOpenFileMmap(t *testing.T) {
	db, _ := buildTestDB(t)
	path := filepath.Join(t.TempDir(), "idx.v3")
	fd, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveV3(fd); err != nil {
		t.Fatal(err)
	}
	fd.Close()
	db2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	info := db2.Info()
	if info.Version != 3 || info.Path != path || info.Funcs != db.Len() {
		t.Errorf("Info = %+v", info)
	}
	st, _ := os.Stat(path)
	if info.Bytes != st.Size() {
		t.Errorf("Info.Bytes = %d, want %d", info.Bytes, st.Size())
	}
	if !info.Mapped {
		t.Skip("platform without mmap fast path")
	}
}

// TestV3ConvertBackToGob: a store-backed database re-saved as gob loads
// as a self-contained v2 file with identical entries.
func TestV3ConvertBackToGob(t *testing.T) {
	db, _ := buildTestDB(t)
	var v3 bytes.Buffer
	if err := db.SaveV3(&v3); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(bytes.NewReader(v3.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var gobBuf bytes.Buffer
	if err := db2.Save(&gobBuf); err != nil {
		t.Fatal(err)
	}
	db3, err := Load(bytes.NewReader(gobBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if db3.Info().Version != indexVersion {
		t.Errorf("round-tripped format version %d", db3.Info().Version)
	}
	for i, e := range db.Entries {
		if !reflect.DeepEqual(db3.Entries[i].Function(), e.Function()) {
			t.Errorf("entry %d changed across v3→gob round trip", i)
		}
	}
}
