package index

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/prep"
	"repro/internal/tinyc"
)

// The search-stack benchmarks run on the same ~123-function corpus as
// the server benchmarks (internal/server/bench_test.go) so the numbers
// line up. `go test -bench SnapshotSearch -benchmem ./internal/index/`
// gives quick numbers; TestPruningBenchReport regenerates
// BENCH_pruning.json when run with BENCH_PRUNING_REPORT=path.

var (
	benchOnce sync.Once
	benchDB   *DB
)

// benchCorpusDB builds the large benchmark corpus once per process
// (mirrors the server bigDB configuration).
func benchCorpusDB(tb testing.TB) *DB {
	tb.Helper()
	benchOnce.Do(func() {
		c, err := corpus.Build(corpus.BuildConfig{
			Seed:          11,
			ContextCopies: 4,
			Versions:      3,
			NoiseExes:     6,
			FuncsPerExe:   8,
			TargetStmts:   40,
			FillerStmts:   12,
			Opt:           tinyc.O2,
		})
		if err != nil {
			return
		}
		db := New()
		for _, e := range c.Exes {
			if err := db.AddImage(e.Name, e.Image, e.Truth); err != nil {
				return
			}
		}
		benchDB = db
	})
	if benchDB == nil {
		tb.Fatal("benchmark corpus failed to build")
	}
	return benchDB
}

func benchQuery(tb testing.TB, db *DB) *prep.Function {
	tb.Helper()
	for _, e := range db.Entries {
		if e.Truth == corpus.LibFuncName {
			return e.Func
		}
	}
	tb.Fatalf("no entry with truth %q", corpus.LibFuncName)
	return nil
}

// BenchmarkSnapshotSearch measures one uncached full-corpus query
// through the snapshot scan path in its three configurations: the old
// exhaustive DP, the default lossless score-bound pruner, and the lossy
// feature prefilter at the default candidate cap.
func BenchmarkSnapshotSearch(b *testing.B) {
	db := benchCorpusDB(b)
	snap := BuildSnapshot(db, []int{3}, 0)
	ref := core.Decompose(benchQuery(b, db), 3)

	for _, bc := range []struct {
		name  string
		prune bool
		pf    PrefilterOptions
	}{
		{"exhaustive", false, PrefilterOptions{}},
		{"pruned", true, PrefilterOptions{}},
		{"prefiltered", true, PrefilterOptions{Enabled: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Prune = bc.prune
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hits, err := snap.SearchDecomposedWith(ref, opts, bc.pf)
				if err != nil {
					b.Fatal(err)
				}
				if len(hits) == 0 {
					b.Fatal("no hits")
				}
			}
		})
	}
}

var pruningReport = os.Getenv("BENCH_PRUNING_REPORT")

// TestPruningBenchReport measures the uncached snapshot-search speedup
// from the score-bound pruner (the headline number: pruned vs
// exhaustive on identical results) and the recall@10 of the lossy
// feature prefilter at several candidate caps, and writes
// BENCH_pruning.json at the path in BENCH_PRUNING_REPORT (skipped
// otherwise, and in -short mode).
func TestPruningBenchReport(t *testing.T) {
	if pruningReport == "" {
		t.Skip("set BENCH_PRUNING_REPORT=path to write the report")
	}
	if testing.Short() {
		t.Skip("timing report; skipped in -short mode")
	}
	db := benchCorpusDB(t)
	snap := BuildSnapshot(db, []int{3}, 0)
	ref := core.Decompose(benchQuery(t, db), 3)

	run := func(prune bool, pf PrefilterOptions) ([]Hit, time.Duration) {
		opts := core.DefaultOptions()
		opts.Prune = prune
		t0 := time.Now()
		hits, err := snap.SearchDecomposedWith(ref, opts, pf)
		if err != nil {
			t.Fatal(err)
		}
		return hits, time.Since(t0)
	}
	// Best-of-N wall-clock keeps the report stable on noisy machines.
	best := func(prune bool, pf PrefilterOptions) ([]Hit, time.Duration) {
		hits, min := run(prune, pf)
		for i := 0; i < 4; i++ {
			if _, d := run(prune, pf); d < min {
				min = d
			}
		}
		return hits, min
	}

	exHits, exTime := best(false, PrefilterOptions{})
	prHits, prTime := best(true, PrefilterOptions{})
	if len(exHits) != len(prHits) {
		t.Fatalf("pruned returned %d hits, exhaustive %d", len(prHits), len(exHits))
	}
	for i := range exHits {
		// PairsPruned is work accounting, nonzero only when pruning runs.
		exHits[i].Result.PairsPruned, prHits[i].Result.PairsPruned = 0, 0
		if exHits[i].Entry != prHits[i].Entry || exHits[i].Result != prHits[i].Result {
			t.Fatalf("hit %d differs between pruned and exhaustive", i)
		}
	}
	speedup := float64(exTime) / float64(prTime)

	// recall@10: fraction of the exhaustive top-10 the prefilter keeps.
	top10 := map[*Entry]bool{}
	for _, h := range TopK(exHits, 10, 0) {
		top10[h.Entry] = true
	}
	recall := map[string]any{}
	for _, cap := range []int{5, 10, 25, 50} {
		hits, _ := run(true, PrefilterOptions{Candidates: cap})
		kept := 0
		for _, h := range TopK(hits, 10, 0) {
			if top10[h.Entry] {
				kept++
			}
		}
		recall[fmt.Sprintf("recall_at_10_c%d", cap)] = float64(kept) / float64(len(top10))
	}

	report := map[string]any{
		"benchmark":             fmt.Sprintf("uncached Snapshot.Search, %d-function corpus, k=3, best of 5", db.Len()),
		"corpus_functions":      db.Len(),
		"exhaustive_search_ms":  float64(exTime.Microseconds()) / 1000,
		"pruned_search_ms":      float64(prTime.Microseconds()) / 1000,
		"prune_speedup_x":       speedup,
		"results_bit_identical": true,
		"gomaxprocs":            runtime.GOMAXPROCS(0),
	}
	for k, v := range recall {
		report[k] = v
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pruningReport, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: exhaustive %.1fms, pruned %.1fms (%.1fx)",
		pruningReport, float64(exTime.Microseconds())/1000,
		float64(prTime.Microseconds())/1000, speedup)
	if speedup < 3 {
		t.Errorf("prune speedup %.2fx, want >= 3x", speedup)
	}
}
