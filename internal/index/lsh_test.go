package index

import (
	"bytes"
	"context"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/minhash"
	"repro/internal/telemetry"
)

// TestPrefilterCap: the "Candidates > 0 implies Enabled" contract at the
// options layer, including the zero, negative and Mode-only corners. The
// server and CLI layers re-test their own spellings of the same rule.
func TestPrefilterCap(t *testing.T) {
	cases := []struct {
		name string
		pf   PrefilterOptions
		want int
	}{
		{"zero value disabled", PrefilterOptions{}, 0},
		{"enabled default cap", PrefilterOptions{Enabled: true}, DefaultPrefilterCandidates},
		{"candidates imply enabled", PrefilterOptions{Candidates: 7}, 7},
		{"negative candidates stay disabled", PrefilterOptions{Candidates: -3}, 0},
		{"enabled negative uses default", PrefilterOptions{Enabled: true, Candidates: -3}, DefaultPrefilterCandidates},
		{"enabled zero uses default", PrefilterOptions{Enabled: true, Candidates: 0}, DefaultPrefilterCandidates},
		{"mode alone does not enable", PrefilterOptions{Mode: ModeLSH}, 0},
		{"mode with candidates", PrefilterOptions{Mode: ModeLSH, Candidates: 4}, 4},
		{"mode with enabled", PrefilterOptions{Mode: ModeLSH, Enabled: true}, DefaultPrefilterCandidates},
		{"scan mode zero value", PrefilterOptions{Mode: ModeScan}, 0},
	}
	for _, tc := range cases {
		if got := tc.pf.cap(); got != tc.want {
			t.Errorf("%s: cap() = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestParsePrefilterMode(t *testing.T) {
	cases := []struct {
		in   string
		mode PrefilterMode
		ok   bool
	}{
		{"", ModeScan, true},
		{"scan", ModeScan, true},
		{"lsh", ModeLSH, true},
		{"LSH", "", false},
		{"minhash", "", false},
	}
	for _, tc := range cases {
		mode, ok := ParsePrefilterMode(tc.in)
		if mode != tc.mode || ok != tc.ok {
			t.Errorf("ParsePrefilterMode(%q) = (%q, %v), want (%q, %v)", tc.in, mode, ok, tc.mode, tc.ok)
		}
	}
}

// TestLSHOracleEquality: at a saturating limit, the lshIndex candidate
// set must EQUAL the brute-force banding oracle — every entry sharing at
// least one band bucket with the query, no more and no fewer — and the
// ranking must be (Shared = colliding bands * Rows, desc, id asc). With
// Rows=1 (the default) Shared is exactly the matching-position count;
// the 16x4 case pins the generalized semantics.
func TestLSHOracleEquality(t *testing.T) {
	feats := [][]uint64{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{1, 2, 3, 4, 5, 6, 7, 9}, // near-duplicate of 0
		{100, 200, 300},
		{1, 2, 3},
		{}, // empty set: EmptySig signature, never a candidate for a real query
		{5000, 6000, 7000, 8000},
	}
	for _, p := range []minhash.Params{
		minhash.Default,
		{Bands: 16, Rows: 4, Seed: minhash.DefaultSeed},
	} {
		x := lshFromFeatures(p, feats, nil)
		query := feats[0]
		qsig := minhash.Signature(nil, query, p)

		oracle := make(map[int32]int) // id -> colliding bands * Rows
		for id, fs := range feats {
			sig := minhash.Signature(nil, fs, p)
			colliding := 0
			for b := 0; b < p.Bands; b++ {
				if minhash.BandHash(sig, b, p) == minhash.BandHash(qsig, b, p) {
					colliding++
				}
			}
			if colliding > 0 {
				oracle[int32(id)] = colliding * p.Rows
			}
		}
		if _, ok := oracle[0]; !ok {
			t.Fatal("oracle lost the query's own entry")
		}
		if p.Rows == 1 {
			// Single-row bands: Shared must equal the raw matching-position
			// count that EstJaccard is built on.
			for id, want := range oracle {
				sig := minhash.Signature(nil, feats[id], p)
				if got := minhash.SharedPositions(qsig, sig); got != want {
					t.Errorf("rows=1 id %d: oracle %d != shared positions %d", id, want, got)
				}
			}
		}

		got := x.ranked(context.Background(), query, len(feats)+1, nil)
		if len(got) != len(oracle) {
			t.Fatalf("%dx%d: ranked returned %d candidates, oracle has %d", p.Bands, p.Rows, len(got), len(oracle))
		}
		for i, r := range got {
			want, ok := oracle[r.ID]
			if !ok {
				t.Fatalf("%dx%d: candidate %d not in the banding oracle", p.Bands, p.Rows, r.ID)
			}
			if r.Shared != want {
				t.Errorf("%dx%d: id %d: Shared = %d, oracle says %d", p.Bands, p.Rows, r.ID, r.Shared, want)
			}
			if i > 0 {
				prev := got[i-1]
				if prev.Shared < r.Shared || (prev.Shared == r.Shared && prev.ID >= r.ID) {
					t.Errorf("%dx%d: rank order violated at %d: %+v before %+v", p.Bands, p.Rows, i, prev, r)
				}
			}
		}
		if got[0].ID != 0 || got[0].Shared != p.K() {
			t.Errorf("%dx%d: self entry should rank first with full agreement, got %+v", p.Bands, p.Rows, got[0])
		}

		ids := x.topCandidates(context.Background(), query, len(feats)+1, nil)
		if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
			t.Errorf("topCandidates not ascending: %v", ids)
		}
		if len(ids) != len(got) {
			t.Errorf("topCandidates kept %d ids, ranked had %d", len(ids), len(got))
		}

		if x.ranked(context.Background(), nil, 10, nil) != nil {
			t.Error("empty query feature set must yield no candidates")
		}
	}
}

// TestLSHSubsetOfExhaustive: the final results of an lsh-prefiltered
// search are a subset of the exhaustive scan with bit-identical Results
// per entry — lsh only changes which candidates reach the exact stage.
func TestLSHSubsetOfExhaustive(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	opts := core.DefaultOptions()
	full := db.Search(query, opts)
	byEntry := make(map[*Entry]core.Result, len(full))
	for _, h := range full {
		byEntry[h.Entry] = h.Result
	}
	for _, c := range []int{1, 5, 1 << 20} {
		pre := db.SearchWith(query, opts, PrefilterOptions{Candidates: c, Mode: ModeLSH})
		if len(pre) == 0 {
			t.Fatalf("cap %d: no lsh candidates for a query lifted from the corpus", c)
		}
		if len(pre) > c {
			t.Fatalf("cap %d exceeded: %d hits", c, len(pre))
		}
		for _, h := range pre {
			want, ok := byEntry[h.Entry]
			if !ok {
				t.Fatalf("cap %d: lsh hit not in exhaustive results", c)
			}
			if h.Result != want {
				t.Errorf("cap %d: %s/%s result drifted: %+v vs %+v",
					c, h.Entry.Exe, h.Entry.Name, h.Result, want)
			}
		}
	}
}

// TestLSHFindsSelf: the query is lifted from an indexed executable, so
// its feature set — and therefore its signature — matches a corpus entry
// exactly: it collides in every band, ranks first, and must survive even
// a tiny candidate cap.
func TestLSHFindsSelf(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	hits := db.SearchWith(query, core.DefaultOptions(), PrefilterOptions{Candidates: 3, Mode: ModeLSH})
	found := false
	for _, h := range hits {
		if h.Result.IsMatch {
			found = true
		}
	}
	if !found {
		t.Error("lsh search lost the planted match at cap 3")
	}
}

// TestLSHDeterministicAcrossBackends: the same corpus must yield the same
// lsh candidates and hits whether the signatures were computed in memory,
// persisted by SaveV3LSH and adopted from the store, or re-persisted from
// a loaded store (a convert round trip) — the build/load/convert
// determinism contract.
func TestLSHDeterministicAcrossBackends(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	opts := core.DefaultOptions()
	pf := PrefilterOptions{Candidates: 7, Mode: ModeLSH}

	hitKey := func(hits []Hit) []string {
		var out []string
		for _, h := range hits {
			out = append(out, h.Entry.Exe+"/"+h.Entry.Name)
		}
		return out
	}

	memA := db.SearchWith(query, opts, pf)
	memB := db.SearchWith(query, opts, pf)
	if !reflect.DeepEqual(hitKey(memA), hitKey(memB)) {
		t.Fatal("identical lsh queries returned different hits")
	}

	var buf bytes.Buffer
	if err := db.SaveV3LSH(&buf, minhash.Default); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)
	db2, err := Load(bytes.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}
	if !db2.Store().HasLSH() {
		t.Fatal("SaveV3LSH output has no LSHB section")
	}
	// Store-adopted signatures must be exactly what the in-memory path
	// computes from the same feature sets.
	p := db2.Store().LSHParams()
	if p != minhash.Default {
		t.Fatalf("persisted params %+v, want %+v", p, minhash.Default)
	}
	feats := db.features()
	for i, fs := range feats {
		want := minhash.Signature(nil, fs, p)
		if !reflect.DeepEqual(db2.Store().LSHSig(i), want) {
			t.Fatalf("entry %d: persisted signature differs from recomputed", i)
		}
	}

	// Query by the same function, resolved in the loaded DB.
	query2 := queryFor(t, db2, corpus.LibFuncName)
	if query2 == nil {
		query2 = query
	}
	storeHits, err := db2.SearchCtx(context.Background(), query, opts, pf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hitKey(memA), hitKey(storeHits)) {
		t.Errorf("store-backed lsh hits differ from in-memory:\n mem:   %v\n store: %v",
			hitKey(memA), hitKey(storeHits))
	}

	// Convert round trip: re-serializing the loaded store must reproduce
	// the signature pool byte for byte.
	var buf2 bytes.Buffer
	if err := db2.SaveV3LSH(&buf2, minhash.Default); err != nil {
		t.Fatal(err)
	}
	db3, err := Load(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(db3.Store().LSHSigs(), db2.Store().LSHSigs()) {
		t.Error("convert round trip changed the signature pool")
	}
}

// TestLSHSnapshotParity: DB and Snapshot lsh searches agree hit for hit.
func TestLSHSnapshotParity(t *testing.T) {
	db, _ := buildTestDB(t)
	query := queryFor(t, db, corpus.LibFuncName)
	snap := BuildSnapshot(db, []int{3}, 4)
	opts := core.DefaultOptions()
	pf := PrefilterOptions{Candidates: 9, Mode: ModeLSH}
	want := db.SearchWith(query, opts, pf)
	got, err := snap.SearchDecomposedWith(core.Decompose(query, 3), opts, pf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot lsh returned %d hits, DB returned %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Entry.Exe != want[i].Entry.Exe || got[i].Entry.Name != want[i].Entry.Name ||
			got[i].Result != want[i].Result {
			t.Errorf("hit %d differs: %s/%s vs %s/%s", i,
				got[i].Entry.Exe, got[i].Entry.Name, want[i].Entry.Exe, want[i].Entry.Name)
		}
	}
}

// TestLSHTelemetry: an lsh query counts lsh_queries and lsh_candidates,
// the bucket build fills the occupancy histogram, and PrefilterRankWith
// mirrors the same accounting on the degraded path.
func TestLSHTelemetry(t *testing.T) {
	db, _ := buildTestDB(t)
	tel := telemetry.New()
	db.Tel = tel
	query := queryFor(t, db, corpus.LibFuncName)
	snap := BuildSnapshot(db, []int{3}, 2)

	ranked, err := snap.PrefilterRankWith(context.Background(), core.Decompose(query, 3), 5, ModeLSH)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("no lsh candidates for a corpus query")
	}
	if got := tel.Get(telemetry.LSHQueries); got != 1 {
		t.Errorf("lsh_queries = %d, want 1", got)
	}
	if got := tel.Get(telemetry.LSHCandidates); got != uint64(len(ranked)) {
		t.Errorf("lsh_candidates = %d, want %d", got, len(ranked))
	}
	if got := tel.Get(telemetry.LSHBandCollisions); got == 0 {
		t.Error("lsh_band_collisions stayed zero across a colliding query")
	}
	if got := tel.Get(telemetry.LSHFallbacks); got != 0 {
		t.Errorf("lsh_fallbacks = %d on a corpus with signatures", got)
	}
	snap2 := tel.Snapshot()
	if snap2.Histograms["lsh_bucket_occupancy"].Count == 0 {
		t.Error("bucket occupancy histogram is empty after an lsh build")
	}

	// Scan-mode ranking must leave the lsh counters untouched.
	before := tel.Get(telemetry.LSHQueries)
	if _, err := snap.PrefilterRank(context.Background(), core.Decompose(query, 3), 5); err != nil {
		t.Fatal(err)
	}
	if got := tel.Get(telemetry.LSHQueries); got != before {
		t.Errorf("scan ranking bumped lsh_queries to %d", got)
	}
}
