package index

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/tinyc"
)

// The scale benchmark behind BENCH_scale.json: a campaign-built corpus
// saved as both v2 gob and v3 columnar, then cold-started in child
// processes (one per format, so heap and page-cache state can't leak
// between measurements) that report load + snapshot-build time, one
// prefiltered query, and steady-state VmRSS. Run with
//
//	BENCH_SCALE_REPORT=BENCH_scale.json go test -run TestScaleBenchReport -timeout 30m ./internal/index/
//
// BENCH_SCALE_FUNCS overrides the corpus sizes (default "10000,100000").

var scaleReport = os.Getenv("BENCH_SCALE_REPORT")

// childProbe is one format's cold-start measurement, reported by the
// child process as a single JSON line on stdout.
type childProbe struct {
	ColdStartMS float64 `json:"cold_start_ms"` // open + BuildSnapshot
	QueryMS     float64 `json:"query_ms"`      // one prefiltered query
	RSSKB       int64   `json:"rss_kb"`        // VmRSS after GC
	Functions   int     `json:"functions"`
	Mapped      bool    `json:"mapped"`
}

// TestScaleColdStartProbe is the child half of the scale benchmark: it
// runs only when SCALE_CHILD_DB points at an index file, loads it,
// builds a snapshot, runs one prefiltered query and prints a childProbe
// JSON line.
func TestScaleColdStartProbe(t *testing.T) {
	path := os.Getenv("SCALE_CHILD_DB")
	if path == "" {
		t.Skip("child probe; driven by TestScaleBenchReport")
	}
	t0 := time.Now()
	db, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap := BuildSnapshot(db, []int{3}, 0)
	cold := time.Since(t0)

	ref := core.Decompose(db.Entries[0].Function(), 3)
	opts := core.DefaultOptions()
	t1 := time.Now()
	hits, err := snap.SearchDecomposedWith(ref, opts, PrefilterOptions{Candidates: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("probe query returned no hits")
	}
	queryMS := float64(time.Since(t1).Microseconds()) / 1000

	runtime.GC()
	out, _ := json.Marshal(childProbe{
		ColdStartMS: float64(cold.Microseconds()) / 1000,
		QueryMS:     queryMS,
		RSSKB:       readVmRSSKB(),
		Functions:   snap.Len(),
		Mapped:      db.Info().Mapped,
	})
	fmt.Printf("SCALEPROBE %s\n", out)
}

// readVmRSSKB returns the current resident set size from
// /proc/self/status, or 0 where unavailable.
func readVmRSSKB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "VmRSS:"); ok {
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				n, _ := strconv.ParseInt(fields[0], 10, 64)
				return n
			}
		}
	}
	return 0
}

// runScaleChild re-executes the test binary against one index file and
// parses the probe line.
func runScaleChild(t *testing.T, dbPath string) childProbe {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestScaleColdStartProbe$", "-test.v")
	cmd.Env = append(os.Environ(), "SCALE_CHILD_DB="+dbPath, "BENCH_SCALE_REPORT=")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child probe over %s: %v\n%s", dbPath, err, out)
	}
	for _, line := range strings.Split(string(out), "\n") {
		if rest, ok := strings.CutPrefix(line, "SCALEPROBE "); ok {
			var p childProbe
			if err := json.Unmarshal([]byte(rest), &p); err != nil {
				t.Fatalf("bad probe line %q: %v", rest, err)
			}
			return p
		}
	}
	t.Fatalf("no probe line in child output:\n%s", out)
	return childProbe{}
}

// TestScaleBenchReport builds campaign corpora, saves each as v2 gob and
// v3 columnar, and writes BENCH_scale.json comparing corpus build time,
// on-disk size, cold-start latency and steady-state RSS. The ≥5x
// cold-start and RSS advantage of the mmap path is asserted at the
// largest size when it reaches 100k functions.
func TestScaleBenchReport(t *testing.T) {
	if scaleReport == "" {
		t.Skip("set BENCH_SCALE_REPORT=path to write the report")
	}
	if testing.Short() {
		t.Skip("timing report; skipped in -short mode")
	}
	sizes := []int{10_000, 100_000}
	if s := os.Getenv("BENCH_SCALE_FUNCS"); s != "" {
		sizes = nil
		for _, part := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				t.Fatalf("bad BENCH_SCALE_FUNCS entry %q", part)
			}
			sizes = append(sizes, n)
		}
	}
	dir := t.TempDir()
	var rows []map[string]any
	for _, size := range sizes {
		ccfg := corpus.CampaignConfig{Seed: 7, Funcs: size, FuncsPerExe: 32, Stmts: 10}
		db := New()
		t0 := time.Now()
		total, err := corpus.RunCampaign(ccfg, func(e corpus.Executable, _ tinyc.OptLevel) error {
			return db.AddImage(e.Name, e.Image, e.Truth)
		})
		if err != nil {
			t.Fatal(err)
		}
		buildS := time.Since(t0).Seconds()
		t.Logf("size %d: campaign built %d functions in %.1fs", size, total, buildS)

		gobPath := filepath.Join(dir, fmt.Sprintf("scale-%d.gob", size))
		v3Path := filepath.Join(dir, fmt.Sprintf("scale-%d.v3", size))
		save := func(path string, fn func(io.Writer) error) int64 {
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := fn(f); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			return st.Size()
		}
		gobBytes := save(gobPath, db.Save)
		v3Bytes := save(v3Path, db.SaveV3)

		gob := runScaleChild(t, gobPath)
		v3 := runScaleChild(t, v3Path)
		if gob.Functions != db.Len() || v3.Functions != db.Len() {
			t.Fatalf("probe function counts %d/%d, corpus has %d", gob.Functions, v3.Functions, db.Len())
		}
		coldX := gob.ColdStartMS / v3.ColdStartMS
		rssX := float64(gob.RSSKB) / float64(v3.RSSKB)
		rows = append(rows, map[string]any{
			"functions":          db.Len(),
			"corpus_build_s":     buildS,
			"gob_bytes":          gobBytes,
			"v3_bytes":           v3Bytes,
			"gob_cold_start_ms":  gob.ColdStartMS,
			"v3_cold_start_ms":   v3.ColdStartMS,
			"cold_start_ratio_x": coldX,
			"gob_rss_kb":         gob.RSSKB,
			"v3_rss_kb":          v3.RSSKB,
			"rss_ratio_x":        rssX,
			"gob_query_ms":       gob.QueryMS,
			"v3_query_ms":        v3.QueryMS,
			"v3_mapped":          v3.Mapped,
		})
		t.Logf("size %d: cold start gob %.0fms vs v3 %.0fms (%.1fx), RSS gob %dMB vs v3 %dMB (%.1fx)",
			size, gob.ColdStartMS, v3.ColdStartMS, coldX, gob.RSSKB>>10, v3.RSSKB>>10, rssX)
		if size >= 100_000 {
			if coldX < 5 {
				t.Errorf("size %d: v3 cold start only %.1fx faster than gob, want >= 5x", size, coldX)
			}
			if rssX < 5 {
				t.Errorf("size %d: v3 RSS only %.1fx smaller than gob, want >= 5x", size, rssX)
			}
		}
	}
	report := map[string]any{
		"benchmark":  "cold start + steady-state RSS, v2 gob vs v3 mmap, campaign corpus, k=3",
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"sizes":      rows,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(scaleReport, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", scaleReport)
}
