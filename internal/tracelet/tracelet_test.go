package tracelet

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/cfg"
)

// paperG1 builds a CFG with the exact shape of the paper's Fig. 1(b):
// 1->{2,3}, 2->{4,5}, 3->5, 4->5, 5 exit.
func paperG1(t *testing.T) *cfg.Graph {
	t.Helper()
	src := `
		cmp esi, 1
		jz b3
	b2:
		cmp esi, 2
		jnz b5
	b4:
		mov eax, 2
		jmp b5
	b3:
		mov ecx, 1
		jmp b5
	b5:
		retn
	`
	insts, labels, err := asm.ParseListing(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.BuildListing("g1", insts, labels)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func blockTuples(ts []*Tracelet) [][]int {
	out := make([][]int, len(ts))
	for i, tr := range ts {
		out[i] = tr.BlockIdx
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

func TestExtractPaperShape(t *testing.T) {
	g := paperG1(t)
	if len(g.Blocks) != 5 {
		t.Fatalf("test graph has %d blocks, want 5:\n%s", len(g.Blocks), g)
	}
	// Layout order: block0=(cmp,jz), block1=b2, block2=b4, block3=b3,
	// block4=b5. Mapping to paper numbering: 1=0, 2=1, 4=2, 3=3, 5=4.
	got := blockTuples(Extract(g, 3))
	// Paper: (1,2,4), (1,2,5), (1,3,5), (2,4,5) => in our indices:
	// (0,1,2), (0,1,4), (0,3,4), (1,2,4).
	want := [][]int{{0, 1, 2}, {0, 1, 4}, {0, 3, 4}, {1, 2, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("3-tracelets = %v, want %v", got, want)
	}
}

func TestExtractK1IsAllBlocks(t *testing.T) {
	g := paperG1(t)
	ts := Extract(g, 1)
	if len(ts) != 5 {
		t.Fatalf("got %d 1-tracelets, want 5", len(ts))
	}
	for i, tr := range ts {
		if tr.K() != 1 {
			t.Errorf("tracelet %d has k=%d", i, tr.K())
		}
	}
}

func TestExtractK2(t *testing.T) {
	g := paperG1(t)
	got := blockTuples(Extract(g, 2))
	// Edges: 0->1, 0->3, 1->2, 1->4, 2->4, 3->4.
	want := [][]int{{0, 1}, {0, 3}, {1, 2}, {1, 4}, {2, 4}, {3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("2-tracelets = %v, want %v", got, want)
	}
}

func TestExtractOmitsShortPaths(t *testing.T) {
	// Straight-line function: only one 1-tracelet per block and no
	// k>=2 tracelet beyond the chain length.
	insts, labels, _ := asm.ParseListing("mov eax, 1\nretn")
	g, err := cfg.BuildListing("line", insts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Extract(g, 2)); got != 0 {
		t.Errorf("single-block graph has %d 2-tracelets, want 0", got)
	}
	if got := len(Extract(g, 1)); got != 1 {
		t.Errorf("single-block graph has %d 1-tracelets, want 1", got)
	}
}

func TestExtractStripsJumps(t *testing.T) {
	g := paperG1(t)
	for _, tr := range Extract(g, 3) {
		for _, in := range tr.Insts() {
			if in.IsJump() {
				t.Fatalf("tracelet contains jump %s", in)
			}
		}
	}
}

func TestExtractAcyclic(t *testing.T) {
	// Self-loop: tracelets must not repeat blocks.
	insts, labels, _ := asm.ParseListing(`
	top:
		dec eax
		jnz top
		retn
	`)
	g, err := cfg.BuildListing("loop", insts, labels)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range Extract(g, 3) {
		seen := map[int]bool{}
		for _, b := range tr.BlockIdx {
			if seen[b] {
				t.Fatalf("tracelet %v repeats block %d", tr.BlockIdx, b)
			}
			seen[b] = true
		}
	}
}

func TestHashAndString(t *testing.T) {
	g := paperG1(t)
	ts := Extract(g, 2)
	h := map[uint64]string{}
	for _, tr := range ts {
		s := tr.String()
		if prev, ok := h[tr.Hash()]; ok && prev != s {
			t.Errorf("hash collision between distinct tracelets")
		}
		h[tr.Hash()] = s
	}
	if len(ts) > 0 && ts[0].String() == "" {
		t.Error("empty String()")
	}
}

func TestNumInsts(t *testing.T) {
	g := paperG1(t)
	for _, tr := range Extract(g, 3) {
		if tr.NumInsts() != len(tr.Insts()) {
			t.Errorf("NumInsts=%d, len(Insts)=%d", tr.NumInsts(), len(tr.Insts()))
		}
	}
}

func TestExtractKZero(t *testing.T) {
	g := paperG1(t)
	if got := Extract(g, 0); got != nil {
		t.Errorf("Extract(k=0) = %v, want nil", got)
	}
}

// bruteForcePaths enumerates acyclic k-paths by naive recursion, for
// cross-checking Extract on random graphs.
func bruteForcePaths(succs [][]int, k int) [][]int {
	var out [][]int
	var rec func(path []int)
	rec = func(path []int) {
		if len(path) == k {
			out = append(out, append([]int(nil), path...))
			return
		}
		for _, s := range succs[path[len(path)-1]] {
			on := false
			for _, p := range path {
				if p == s {
					on = true
				}
			}
			if !on {
				rec(append(path, s))
			}
		}
	}
	for v := range succs {
		rec([]int{v})
	}
	return out
}

// TestQuickExtractMatchesBruteForce builds random small CFG shapes and
// checks that Algorithm 2's output is exactly the set of acyclic k-paths.
func TestQuickExtractMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		// Random instruction filler per block; jumps are implied by edges.
		succs := make([][]int, n)
		for i := range succs {
			for _, j := range rng.Perm(n)[:rng.Intn(3)] {
				if j != i {
					succs[i] = append(succs[i], j)
				}
			}
			sort.Ints(succs[i])
		}
		g := &cfg.Graph{Name: "rand"}
		for i := 0; i < n; i++ {
			g.Blocks = append(g.Blocks, &cfg.Block{
				Index: i,
				Insts: []asm.Inst{asm.MustParse("nop")},
				Succs: succs[i],
			})
		}
		k := 1 + rng.Intn(4)
		got := blockTuples(Extract(g, k))
		want := bruteForcePaths(succs, k)
		sort.Slice(want, func(a, b int) bool {
			x, y := want[a], want[b]
			for i := 0; i < len(x) && i < len(y); i++ {
				if x[i] != y[i] {
					return x[i] < y[i]
				}
			}
			return len(x) < len(y)
		})
		if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
			t.Logf("seed %d k=%d: got %v want %v", seed, k, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
