// Package tracelet implements k-tracelet extraction (paper Section 4.2.1,
// Algorithm 2). A k-tracelet is an ordered tuple of k instruction
// sequences, one per basic block of a directed acyclic sub-path of the
// CFG, with all jump instructions stripped: a continuous, short, partial
// trace of an execution.
package tracelet

import (
	"hash/fnv"
	"strings"

	"repro/internal/asm"
	"repro/internal/cfg"
)

// Tracelet is one k-tracelet: k stripped basic-block bodies along a CFG
// path, plus the indices of the originating blocks (for accountability:
// reported matches can point back into the function).
type Tracelet struct {
	BlockIdx []int
	Blocks   [][]asm.Inst
}

// K returns the tracelet length in basic blocks.
func (t *Tracelet) K() int { return len(t.Blocks) }

// NumInsts returns the total number of instructions.
func (t *Tracelet) NumInsts() int {
	n := 0
	for _, b := range t.Blocks {
		n += len(b)
	}
	return n
}

// Insts returns the concatenated instruction sequence.
func (t *Tracelet) Insts() []asm.Inst {
	out := make([]asm.Inst, 0, t.NumInsts())
	for _, b := range t.Blocks {
		out = append(out, b...)
	}
	return out
}

// String renders the tracelet as assembly text with ';' between blocks.
func (t *Tracelet) String() string {
	var parts []string
	for _, b := range t.Blocks {
		var lines []string
		for _, in := range b {
			lines = append(lines, in.String())
		}
		parts = append(parts, strings.Join(lines, "\n"))
	}
	return strings.Join(parts, "\n;\n")
}

// Hash returns a content hash of the tracelet (used for caching and
// deduplicated indexing).
func (t *Tracelet) Hash() uint64 {
	h := fnv.New64a()
	for _, b := range t.Blocks {
		for _, in := range b {
			h.Write([]byte(in.String()))
			h.Write([]byte{'\n'})
		}
		h.Write([]byte{';'})
	}
	return h.Sum64()
}

// Extract returns all k-tracelets of the graph (paper Algorithm 2): for
// every basic block, the Cartesian product of the block with all
// (k-1)-tracelets of its successors. Paths shorter than k are omitted, and
// paths never repeat a block (tracelets are acyclic sub-paths).
func Extract(g *cfg.Graph, k int) []*Tracelet {
	if k < 1 {
		return nil
	}
	var out []*Tracelet
	path := make([]int, 0, k)
	onPath := make([]bool, len(g.Blocks))
	var walk func(bi, rem int)
	walk = func(bi, rem int) {
		path = append(path, bi)
		onPath[bi] = true
		if rem == 1 {
			t := &Tracelet{
				BlockIdx: append([]int(nil), path...),
				Blocks:   make([][]asm.Inst, len(path)),
			}
			for i, idx := range path {
				t.Blocks[i] = g.Blocks[idx].Body()
			}
			out = append(out, t)
		} else {
			for _, s := range g.Blocks[bi].Succs {
				if !onPath[s] {
					walk(s, rem-1)
				}
			}
		}
		onPath[bi] = false
		path = path[:len(path)-1]
	}
	for bi := range g.Blocks {
		walk(bi, k)
	}
	return out
}
