package x86

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/asm"
)

// TestKnownEncodings checks emitted bytes against independently known x86
// machine code (as produced by gas/nasm).
func TestKnownEncodings(t *testing.T) {
	tests := []struct {
		src  string
		want []byte
	}{
		{"push ebp", []byte{0x55}},
		{"mov ebp, esp", []byte{0x89, 0xE5}},
		{"sub esp, 18h", []byte{0x83, 0xEC, 0x18}},
		{"sub esp, 128h", []byte{0x81, 0xEC, 0x28, 0x01, 0x00, 0x00}},
		{"mov eax, [ebp+8]", []byte{0x8B, 0x45, 0x08}},
		{"mov [ebp-4], eax", []byte{0x89, 0x45, 0xFC}},
		{"mov eax, 1", []byte{0xB8, 0x01, 0x00, 0x00, 0x00}},
		{"lea eax, [ebx+ecx*4+10h]", []byte{0x8D, 0x44, 0x8B, 0x10}},
		{"retn", []byte{0xC3}},
		{"leave", []byte{0xC9}},
		{"cdq", []byte{0x99}},
		{"nop", []byte{0x90}},
		{"push 5", []byte{0x6A, 0x05}},
		{"push 100h", []byte{0x68, 0x00, 0x01, 0x00, 0x00}},
		{"pop ebx", []byte{0x5B}},
		{"inc eax", []byte{0x40}},
		{"dec edi", []byte{0x4F}},
		{"xor esi, esi", []byte{0x31, 0xF6}},
		{"cmp esi, 1", []byte{0x83, 0xFE, 0x01}},
		{"add eax, ebx", []byte{0x01, 0xD8}},
		{"mov eax, [esp]", []byte{0x8B, 0x04, 0x24}},
		{"mov [esp+4], ecx", []byte{0x89, 0x4C, 0x24, 0x04}},
		{"mov eax, [ebp+0]", []byte{0x8B, 0x45, 0x00}},
		{"imul eax, ebx, 4", []byte{0x6B, 0xC3, 0x04}},
		{"imul eax, ebx, 1000h", []byte{0x69, 0xC3, 0x00, 0x10, 0x00, 0x00}},
		{"imul eax, ebx", []byte{0x0F, 0xAF, 0xC3}},
		{"shl eax, 2", []byte{0xC1, 0xE0, 0x02}},
		{"sar edx, 1Fh", []byte{0xC1, 0xFA, 0x1F}},
		{"neg eax", []byte{0xF7, 0xD8}},
		{"not ecx", []byte{0xF7, 0xD1}},
		{"idiv ebx", []byte{0xF7, 0xFB}},
		{"test eax, eax", []byte{0x85, 0xC0}},
		{"mov [eax], edx", []byte{0x89, 0x10}},
		{"mov edx, [1234h]", []byte{0x8B, 0x15, 0x34, 0x12, 0x00, 0x00}},
		{"call eax", []byte{0xFF, 0xD0}},
	}
	for _, tc := range tests {
		in := asm.MustParse(tc.src)
		got, fixups, err := EncodeInst(in)
		if err != nil {
			t.Errorf("encode %q: %v", tc.src, err)
			continue
		}
		if len(fixups) != 0 {
			t.Errorf("encode %q: unexpected fixups %v", tc.src, fixups)
		}
		if !bytes.Equal(got, tc.want) {
			t.Errorf("encode %q = % X, want % X", tc.src, got, tc.want)
		}
	}
}

func TestEncodeDecodeRoundTripFixed(t *testing.T) {
	srcs := []string{
		"push ebp",
		"mov ebp, esp",
		"mov eax, [ebp+8]",
		"mov [ebp-0Ch], eax",
		"mov [esp+18h], ebx",
		"lea esi, [eax+edx*8-20h]",
		"add eax, 12345h",
		"cmp [ebp-4], edi",
		"imul ecx, [ebp+10h], 7",
		"push 7Fh",
		"push 80h",
		"test eax, 0FF00h",
		"pop [eax+4]",
		"inc [ebx]",
		"dec [ebx+8]",
		"push [ebp+0Ch]",
		"mov edi, [esi+eax*2]",
		"retn",
	}
	for _, src := range srcs {
		in := asm.MustParse(src)
		code, fixups, err := EncodeInst(in)
		if err != nil {
			t.Fatalf("encode %q: %v", src, err)
		}
		if len(fixups) != 0 {
			t.Fatalf("encode %q: unexpected fixups", src)
		}
		out, n, err := Decode(code, 0x1000)
		if err != nil {
			t.Fatalf("decode %q (% X): %v", src, code, err)
		}
		if n != len(code) {
			t.Errorf("decode %q: consumed %d of %d bytes", src, n, len(code))
		}
		if !in.Equal(out) {
			t.Errorf("round trip %q -> %q", in, out)
		}
	}
}

// genInst generates a random encodable instruction in canonical form.
func genInst(rng *rand.Rand) asm.Inst {
	regsNoESP := []asm.Reg{asm.EAX, asm.ECX, asm.EDX, asm.EBX, asm.EBP, asm.ESI, asm.EDI}
	anyReg := asm.GP32()
	reg := func() asm.Operand { return asm.RegOp(anyReg[rng.Intn(len(anyReg))]) }
	imm := func() asm.Operand {
		switch rng.Intn(3) {
		case 0:
			return asm.ImmOp(int64(int8(rng.Int())))
		case 1:
			return asm.ImmOp(int64(rng.Intn(1 << 16)))
		default:
			return asm.ImmOp(int64(int32(rng.Uint32())))
		}
	}
	mem := func() asm.Operand {
		var m memRef
		m.scale = 1
		if rng.Intn(4) > 0 {
			m.base = anyReg[rng.Intn(len(anyReg))]
		}
		if rng.Intn(3) == 0 {
			m.index = regsNoESP[rng.Intn(len(regsNoESP))]
			m.scale = []int{1, 2, 4, 8}[rng.Intn(4)]
		}
		switch rng.Intn(3) {
		case 0:
			// no displacement
		case 1:
			m.disp = int32(int8(rng.Int()))
		default:
			m.disp = int32(rng.Uint32())
		}
		if m.base == asm.RegNone && m.index == asm.RegNone && m.disp == 0 {
			m.disp = 0x1000
		}
		return m.operand()
	}
	rm := func() asm.Operand {
		if rng.Intn(2) == 0 {
			return reg()
		}
		return mem()
	}
	switch rng.Intn(12) {
	case 0:
		return asm.New("mov", reg(), imm())
	case 1:
		return asm.New("mov", rm(), reg())
	case 2:
		return asm.New("mov", reg(), mem())
	case 3:
		return asm.New("mov", mem(), imm())
	case 4:
		alu := []string{"add", "or", "adc", "sbb", "and", "sub", "xor", "cmp"}
		name := alu[rng.Intn(len(alu))]
		switch rng.Intn(3) {
		case 0:
			return asm.New(name, rm(), reg())
		case 1:
			return asm.New(name, reg(), mem())
		default:
			return asm.New(name, rm(), imm())
		}
	case 5:
		return asm.New("lea", reg(), mem())
	case 6:
		if rng.Intn(2) == 0 {
			return asm.New("imul", reg(), rm())
		}
		return asm.New("imul", reg(), rm(), imm())
	case 7:
		switch rng.Intn(3) {
		case 0:
			return asm.New("push", reg())
		case 1:
			return asm.New("push", imm())
		default:
			return asm.New("push", mem())
		}
	case 8:
		if rng.Intn(2) == 0 {
			return asm.New("pop", reg())
		}
		return asm.New("pop", mem())
	case 9:
		un := []string{"not", "neg", "mul", "div", "idiv", "inc", "dec"}
		return asm.New(un[rng.Intn(len(un))], rm())
	case 10:
		sh := []string{"shl", "shr", "sar", "rol", "ror"}
		return asm.New(sh[rng.Intn(len(sh))], rm(), asm.ImmOp(int64(rng.Intn(32))))
	default:
		if rng.Intn(2) == 0 {
			return asm.New("test", rm(), reg())
		}
		return asm.New("test", rm(), imm())
	}
}

// TestQuickRoundTrip is the property test: every generated instruction
// encodes, decodes back to itself, and consumes exactly its own bytes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := genInst(rng)
		code, fixups, err := EncodeInst(in)
		if err != nil {
			t.Logf("encode %q: %v", in, err)
			return false
		}
		if len(fixups) != 0 {
			t.Logf("unexpected fixups for %q", in)
			return false
		}
		out, n, err := Decode(code, 0x8048000)
		if err != nil {
			t.Logf("decode %q (% X): %v", in, code, err)
			return false
		}
		if n != len(code) {
			t.Logf("decode %q: partial consume", in)
			return false
		}
		// imm width is canonicalized by decode (sign-extended imm8 forms
		// decode to the same value), so Inst equality is the right check.
		if !in.Equal(out) {
			t.Logf("round trip %q -> %q (% X)", in, out, code)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAssembleFuncJumps(t *testing.T) {
	insts, labels, err := asm.ParseListing(`
		cmp eax, 1
		jnz else_
		mov ebx, 1
		jmp done
	else_:
		mov ebx, 2
	done:
		retn
	`)
	if err != nil {
		t.Fatal(err)
	}
	code, fixups, err := AssembleFunc(insts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixups) != 0 {
		t.Fatalf("unexpected fixups: %v", fixups)
	}
	dec, err := DecodeAll(code, 0)
	if err != nil {
		t.Fatalf("decode: %v (% X)", err, code)
	}
	if len(dec) != len(insts) {
		t.Fatalf("decoded %d instructions, want %d", len(dec), len(insts))
	}
	// jnz must target the mov ebx,2 instruction, jmp must target retn.
	jnz := dec[1]
	if got, want := uint32(jnz.Inst.Ops[0].Arg.Imm), dec[4].Addr; got != want {
		t.Errorf("jnz target %#x, want %#x", got, want)
	}
	jmp := dec[3]
	if got, want := uint32(jmp.Inst.Ops[0].Arg.Imm), dec[5].Addr; got != want {
		t.Errorf("jmp target %#x, want %#x", got, want)
	}
	// Both branches are near; short forms expected.
	if code[len(code)-1] != 0xC3 {
		t.Error("function should end with ret")
	}
}

func TestAssembleFuncRelaxation(t *testing.T) {
	// Build a function where a forward jump crosses > 127 bytes of code so
	// that it must be promoted to rel32.
	var src bytes.Buffer
	src.WriteString("jmp far_\n")
	for i := 0; i < 40; i++ {
		src.WriteString("mov eax, 12345678h\n") // 5 bytes each
	}
	src.WriteString("far_:\nretn\n")
	insts, labels, err := asm.ParseListing(src.String())
	if err != nil {
		t.Fatal(err)
	}
	code, _, err := AssembleFunc(insts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if code[0] != 0xE9 {
		t.Errorf("long forward jump should use E9, got %#02x", code[0])
	}
	dec, err := DecodeAll(code, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	last := dec[len(dec)-1]
	if got := uint32(dec[0].Inst.Ops[0].Arg.Imm); got != last.Addr {
		t.Errorf("relaxed jump target %#x, want %#x", got, last.Addr)
	}
}

func TestAssembleFuncBackwardJump(t *testing.T) {
	insts, labels, err := asm.ParseListing(`
	top:
		dec eax
		cmp eax, 0
		jg top
		retn
	`)
	if err != nil {
		t.Fatal(err)
	}
	code, _, err := AssembleFunc(insts, labels)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeAll(code, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	jg := dec[2]
	if got := uint32(jg.Inst.Ops[0].Arg.Imm); got != 0x400000 {
		t.Errorf("backward jump target %#x, want %#x", got, 0x400000)
	}
	// Backward short jump should be rel8.
	if dec[2].Len != 2 {
		t.Errorf("near backward jcc should be 2 bytes, got %d", dec[2].Len)
	}
}

func TestCallFixup(t *testing.T) {
	insts, labels, err := asm.ParseListing(`
		push eax
		call _printf
		retn
	`)
	if err != nil {
		t.Fatal(err)
	}
	code, fixups, err := AssembleFunc(insts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixups) != 1 {
		t.Fatalf("got %d fixups, want 1", len(fixups))
	}
	fx := fixups[0]
	if fx.Kind != FixupRel32 || fx.Sym != "_printf" || fx.Class != asm.SymFunc {
		t.Fatalf("bad fixup %+v", fx)
	}
	// Link the call to address 0x8049000 with the code at 0x8048000.
	ApplyFixup(code, fx, 0x8049000, 0x8048000)
	dec, err := DecodeAll(code, 0x8048000)
	if err != nil {
		t.Fatal(err)
	}
	if got := uint32(dec[1].Inst.Ops[0].Arg.Imm); got != 0x8049000 {
		t.Errorf("linked call target %#x, want %#x", got, 0x8049000)
	}
}

func TestDataFixups(t *testing.T) {
	for _, src := range []string{
		"mov ebx, offset unk_404000",
		"push offset aHello",
		"mov eax, [aCounter]",
		"mov [aCounter], eax",
		"cmp eax, offset aHello",
	} {
		in := asm.MustParse(src)
		code, fixups, err := EncodeInst(in)
		if err != nil {
			t.Fatalf("encode %q: %v", src, err)
		}
		if len(fixups) != 1 {
			t.Fatalf("%q: got %d fixups, want 1", src, len(fixups))
		}
		fx := fixups[0]
		if fx.Kind != FixupAbs32 {
			t.Errorf("%q: fixup kind %v, want abs32", src, fx.Kind)
		}
		ApplyFixup(code, fx, 0x404000, 0)
		if _, _, err := Decode(code, 0); err != nil {
			t.Errorf("%q: decode after link: %v", src, err)
		}
	}
}

func TestSymbolicMemAddend(t *testing.T) {
	in := asm.MustParse("mov eax, [aTable+8]")
	code, fixups, err := EncodeInst(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixups) != 1 {
		t.Fatalf("got %d fixups, want 1", len(fixups))
	}
	ApplyFixup(code, fixups[0], 0x404100, 0)
	out, _, err := Decode(code, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := asm.MustParse("mov eax, [404108h]")
	if !out.Equal(want) {
		t.Errorf("decoded %q, want %q", out, want)
	}
}

func TestEncodeErrors(t *testing.T) {
	for _, src := range []string{
		"mov rax, 1",         // 64-bit register
		"bogus eax",          // unknown mnemonic
		"mov [esp+esp], eax", // esp as index
		"shl eax, ebx",       // register shift count unsupported
	} {
		in, err := asm.Parse(src)
		if err != nil {
			continue // parser may reject, also fine
		}
		if _, _, err := EncodeInst(in); err == nil {
			t.Errorf("EncodeInst(%q): expected error", src)
		}
	}
	// Undefined label.
	insts := []asm.Inst{asm.MustParse("jmp nowhere")}
	if _, _, err := AssembleFunc(insts, map[string]int{}); err == nil {
		t.Error("AssembleFunc with undefined label: expected error")
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, code := range [][]byte{
		{},           // empty
		{0x8B},       // truncated modrm
		{0x8B, 0x45}, // truncated disp
		{0xB8, 0x01}, // truncated imm32
		{0x0F, 0x04}, // unknown 0F opcode
		{0xF4},       // hlt: unsupported
		{0xFF, 0xF8}, // FF /7: undefined
	} {
		if _, _, err := Decode(code, 0); err == nil {
			t.Errorf("Decode(% X): expected error", code)
		}
	}
}

// TestDecodeNeverPanics feeds random byte soup to the decoder: it must
// return cleanly (instruction or error) for any input.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, rng.Intn(24))
		rng.Read(buf)
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on % X: %v", buf, r)
			}
		}()
		_, n, err := Decode(buf, uint32(rng.Uint32()))
		if err == nil && (n <= 0 || n > len(buf)) {
			t.Logf("bad length %d for % X", n, buf)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSetccMovzxCmovEncodings(t *testing.T) {
	tests := []struct {
		src  string
		want []byte
	}{
		{"setz al", []byte{0x0F, 0x94, 0xC0}},
		{"setnz cl", []byte{0x0F, 0x95, 0xC1}},
		{"setl dl", []byte{0x0F, 0x9C, 0xC2}},
		{"setg bl", []byte{0x0F, 0x9F, 0xC3}},
		{"movzx eax, al", []byte{0x0F, 0xB6, 0xC0}},
		{"movzx ecx, cl", []byte{0x0F, 0xB6, 0xC9}},
		{"movsx edx, dl", []byte{0x0F, 0xBE, 0xD2}},
		{"cmovz eax, ebx", []byte{0x0F, 0x44, 0xC3}},
		{"cmovg esi, edi", []byte{0x0F, 0x4F, 0xF7}},
	}
	for _, tc := range tests {
		in := asm.MustParse(tc.src)
		got, _, err := EncodeInst(in)
		if err != nil {
			t.Errorf("encode %q: %v", tc.src, err)
			continue
		}
		if !bytes.Equal(got, tc.want) {
			t.Errorf("encode %q = % X, want % X", tc.src, got, tc.want)
		}
		out, n, err := Decode(got, 0)
		if err != nil || n != len(got) {
			t.Errorf("decode %q: %v (n=%d)", tc.src, err, n)
			continue
		}
		if !in.Equal(out) {
			t.Errorf("round trip %q -> %q", in, out)
		}
	}
	// Memory forms round trip too.
	for _, src := range []string{
		"setz [ebp-4]",
		"movzx eax, [ebp+8]",
		"cmovnz ecx, [esi+4]",
	} {
		in := asm.MustParse(src)
		code, _, err := EncodeInst(in)
		if err != nil {
			t.Fatalf("encode %q: %v", src, err)
		}
		out, _, err := Decode(code, 0)
		if err != nil {
			t.Fatalf("decode %q: %v", src, err)
		}
		if !in.Equal(out) {
			t.Errorf("round trip %q -> %q", in, out)
		}
	}
}

func TestLabelAtFunctionEnd(t *testing.T) {
	// A label equal to len(insts) denotes the end of the function; a jump
	// there must assemble and decode to a target just past the last byte.
	insts, labels, err := asm.ParseListing(`
		cmp eax, 1
		jz end_
		inc eax
	end_:
	`)
	if err != nil {
		t.Fatal(err)
	}
	if labels["end_"] != len(insts) {
		t.Fatalf("label index %d, want %d", labels["end_"], len(insts))
	}
	code, _, err := AssembleFunc(insts, labels)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeAll(code, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if got := uint32(dec[1].Inst.Ops[0].Arg.Imm); got != 0x100+uint32(len(code)) {
		t.Errorf("end-label target %#x, want %#x", got, 0x100+uint32(len(code)))
	}
}

func TestAssembleFuncExLabelOffsets(t *testing.T) {
	insts, labels, err := asm.ParseListing(`
		nop
	mid:
		nop
		nop
	tail:
		retn
	`)
	if err != nil {
		t.Fatal(err)
	}
	_, _, offs, err := AssembleFuncEx(insts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if offs["mid"] != 1 || offs["tail"] != 3 {
		t.Errorf("label offsets = %v", offs)
	}
}
