package x86

import (
	"encoding/binary"
	"fmt"

	"repro/internal/asm"
)

// AssembleFunc assembles a function body. Jump targets must be label
// symbols present in labels (mapping label name to instruction index; an
// index equal to len(insts) denotes the end of the function). Short (rel8)
// jump forms are chosen where the displacement allows, using standard
// grow-only relaxation. Call and data-symbol references are returned as
// fixups with offsets relative to the start of the returned code.
func AssembleFunc(insts []asm.Inst, labels map[string]int) ([]byte, []Fixup, error) {
	code, fixups, _, err := AssembleFuncEx(insts, labels)
	return code, fixups, err
}

// AssembleFuncEx is AssembleFunc plus the resolved byte offset of every
// label, which linkers need to materialize jump tables.
func AssembleFuncEx(insts []asm.Inst, labels map[string]int) ([]byte, []Fixup, map[string]int, error) {
	n := len(insts)
	type pre struct {
		bytes  []byte // encoded bytes for non-jump instructions
		fixups []Fixup
		jump   bool // relaxable label jump
		cond   bool // conditional (jcc) vs unconditional (jmp)
		target int  // target instruction index
		long   bool // promoted to rel32 form
		size   int  // current encoded size
	}
	pres := make([]pre, n)
	for i, in := range insts {
		if in.IsJump() && len(in.Ops) == 1 && !in.Ops[0].IsMem() && in.Ops[0].Arg.IsSym() {
			sym := in.Ops[0].Arg.Sym
			ti, ok := labels[sym]
			if !ok {
				return nil, nil, nil, fmt.Errorf("x86: undefined label %q in %s", sym, in)
			}
			if ti < 0 || ti > n {
				return nil, nil, nil, fmt.Errorf("x86: label %q out of range", sym)
			}
			cond := in.IsCondJump()
			if cond {
				if _, ok := ccNum[in.Mnemonic]; !ok {
					return nil, nil, nil, fmt.Errorf("x86: unknown condition %q", in.Mnemonic)
				}
			}
			pres[i] = pre{jump: true, cond: cond, target: ti, size: 2}
			continue
		}
		code, fx, err := EncodeInst(in)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("x86: instruction %d (%s): %w", i, in, err)
		}
		pres[i] = pre{bytes: code, fixups: fx, size: len(code)}
	}

	// Relaxation: start all short, promote to long while any displacement
	// does not fit in rel8. Promotion only grows sizes, so this terminates.
	offsets := make([]int, n+1)
	for {
		off := 0
		for i := range pres {
			offsets[i] = off
			off += pres[i].size
		}
		offsets[n] = off
		changed := false
		for i := range pres {
			p := &pres[i]
			if !p.jump || p.long {
				continue
			}
			disp := offsets[p.target] - (offsets[i] + p.size)
			if !fitsInt8(int64(disp)) {
				p.long = true
				if p.cond {
					p.size = 6
				} else {
					p.size = 5
				}
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Emission.
	var code []byte
	var fixups []Fixup
	for i, in := range insts {
		p := pres[i]
		start := offsets[i]
		if len(code) != start {
			return nil, nil, nil, fmt.Errorf("x86: internal offset mismatch at instruction %d", i)
		}
		if !p.jump {
			code = append(code, p.bytes...)
			for _, fx := range p.fixups {
				fx.Off += start
				fx.NextIP = start + p.size
				fixups = append(fixups, fx)
			}
			continue
		}
		disp := offsets[p.target] - (offsets[i] + p.size)
		switch {
		case !p.cond && !p.long:
			code = append(code, 0xEB, byte(int8(disp)))
		case !p.cond && p.long:
			code = append(code, 0xE9, 0, 0, 0, 0)
			binary.LittleEndian.PutUint32(code[start+1:], uint32(int32(disp)))
		case p.cond && !p.long:
			code = append(code, byte(0x70+ccNum[in.Mnemonic]), byte(int8(disp)))
		default:
			code = append(code, 0x0F, byte(0x80+ccNum[in.Mnemonic]), 0, 0, 0, 0)
			binary.LittleEndian.PutUint32(code[start+2:], uint32(int32(disp)))
		}
	}
	labelOffs := make(map[string]int, len(labels))
	for name, idx := range labels {
		labelOffs[name] = offsets[idx]
	}
	return code, fixups, labelOffs, nil
}

// ApplyFixup patches one fixup in code, given the resolved absolute address
// of the symbol and the absolute address at which the code will be loaded.
func ApplyFixup(code []byte, fx Fixup, symAddr, codeBase uint32) {
	field := code[fx.Off : fx.Off+4]
	switch fx.Kind {
	case FixupAbs32:
		addend := binary.LittleEndian.Uint32(field)
		binary.LittleEndian.PutUint32(field, symAddr+addend)
	case FixupRel32:
		next := codeBase + uint32(fx.NextIP)
		binary.LittleEndian.PutUint32(field, symAddr-next)
	}
}
