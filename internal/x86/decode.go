package x86

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/asm"
)

// ccName maps condition codes back to mnemonics. The synonyms chosen (jz
// over je, jnz over jne) follow the paper's listings.
var ccName = [16]string{
	"jo", "jno", "jb", "jae", "jz", "jnz", "jbe", "ja",
	"js", "jns", "jp", "jnp", "jl", "jge", "jle", "jg",
}

var aluName = [8]string{"add", "or", "adc", "sbb", "and", "sub", "xor", "cmp"}

// ccSuffix maps condition codes to setcc/cmovcc suffixes, preferring the
// z/nz spellings to match the jump synonyms used elsewhere.
var ccSuffix = [16]string{
	"o", "no", "b", "ae", "z", "nz", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

var shiftName = map[int]string{0: "rol", 1: "ror", 4: "shl", 5: "shr", 7: "sar"}

var unaryName = map[int]string{2: "not", 3: "neg", 4: "mul", 5: "imul", 6: "div", 7: "idiv"}

// Decoded couples a decoded instruction with its address and length.
type Decoded struct {
	Inst asm.Inst
	Addr uint32
	Len  int
}

type reader struct {
	b  []byte
	ip uint32 // address of b[0]
	p  int
}

// Typed decode failures. Both are *expected* rejections of malformed
// input — fuzz targets and hardened callers use errors.Is to separate
// them from genuine faults (anything else, including a panic, is a bug):
//
//   - ErrTruncated: the byte stream ends inside an instruction.
//   - ErrBadOpcode: a byte sequence outside the supported subset.
var (
	ErrTruncated = errors.New("x86: truncated instruction")
	ErrBadOpcode = errors.New("x86: unsupported opcode")
)

func (r *reader) byte() (byte, error) {
	if r.p >= len(r.b) {
		return 0, ErrTruncated
	}
	v := r.b[r.p]
	r.p++
	return v, nil
}

func (r *reader) i8() (int64, error) {
	v, err := r.byte()
	return int64(int8(v)), err
}

func (r *reader) i32() (int64, error) {
	if r.p+4 > len(r.b) {
		return 0, ErrTruncated
	}
	v := int32(binary.LittleEndian.Uint32(r.b[r.p:]))
	r.p += 4
	return int64(v), nil
}

// modrm8 decodes a ModRM byte whose register operands are 8-bit.
func (r *reader) modrm8() (int, asm.Operand, error) {
	save := r.p
	mb, err := r.byte()
	if err != nil {
		return 0, asm.Operand{}, err
	}
	if mb>>6 == 3 {
		return int(mb >> 3 & 7), asm.RegOp(asm.Reg8(int(mb & 7))), nil
	}
	r.p = save
	return r.modrm() // memory forms are identical
}

// modrm decodes a ModRM byte (plus SIB/disp) and returns the register
// field and the r/m operand.
func (r *reader) modrm() (int, asm.Operand, error) {
	mb, err := r.byte()
	if err != nil {
		return 0, asm.Operand{}, err
	}
	mod := int(mb >> 6)
	regField := int(mb >> 3 & 7)
	rm := int(mb & 7)
	if mod == 3 {
		return regField, asm.RegOp(asm.Reg32(rm)), nil
	}
	var m memRef
	m.scale = 1
	hasSIB := rm == 0b100
	if hasSIB {
		sib, err := r.byte()
		if err != nil {
			return 0, asm.Operand{}, err
		}
		scale := 1 << (sib >> 6)
		idx := int(sib >> 3 & 7)
		base := int(sib & 7)
		if idx != 0b100 {
			m.index = asm.Reg32(idx)
			m.scale = scale
		}
		if base == 0b101 && mod == 0 {
			// no base, disp32 follows
			d, err := r.i32()
			if err != nil {
				return 0, asm.Operand{}, err
			}
			m.disp = int32(d)
			return regField, m.operand(), nil
		}
		m.base = asm.Reg32(base)
	} else if rm == 0b101 && mod == 0 {
		d, err := r.i32()
		if err != nil {
			return 0, asm.Operand{}, err
		}
		m.disp = int32(d)
		return regField, m.operand(), nil
	} else {
		m.base = asm.Reg32(rm)
	}
	switch mod {
	case 1:
		d, err := r.i8()
		if err != nil {
			return 0, asm.Operand{}, err
		}
		m.disp = int32(d)
	case 2:
		d, err := r.i32()
		if err != nil {
			return 0, asm.Operand{}, err
		}
		m.disp = int32(d)
	}
	return regField, m.operand(), nil
}

// Decode decodes the instruction at the start of code, which is loaded at
// absolute address ip. Relative jump and call targets are returned as
// immediate operands holding the absolute target address.
func Decode(code []byte, ip uint32) (asm.Inst, int, error) {
	r := &reader{b: code, ip: ip}
	in, err := r.inst()
	if err != nil {
		return asm.Inst{}, 0, err
	}
	return in, r.p, nil
}

// DecodeAll decodes consecutive instructions covering all of code.
func DecodeAll(code []byte, base uint32) ([]Decoded, error) {
	var out []Decoded
	p := 0
	for p < len(code) {
		in, n, err := Decode(code[p:], base+uint32(p))
		if err != nil {
			return out, fmt.Errorf("at %#x: %w", base+uint32(p), err)
		}
		out = append(out, Decoded{Inst: in, Addr: base + uint32(p), Len: n})
		p += n
	}
	return out, nil
}

func (r *reader) rel(width int) (asm.Operand, error) {
	var d int64
	var err error
	if width == 1 {
		d, err = r.i8()
	} else {
		d, err = r.i32()
	}
	if err != nil {
		return asm.Operand{}, err
	}
	target := r.ip + uint32(r.p) + uint32(int32(d))
	return asm.ImmOp(int64(target)), nil
}

func (r *reader) inst() (asm.Inst, error) {
	op, err := r.byte()
	if err != nil {
		return asm.Inst{}, err
	}
	mk := func(m string, ops ...asm.Operand) (asm.Inst, error) {
		return asm.Inst{Mnemonic: m, Ops: ops}, nil
	}
	fail := func() (asm.Inst, error) {
		return asm.Inst{}, fmt.Errorf("%w %#02x at %#x", ErrBadOpcode, op, r.ip)
	}

	// ALU rows: grp*8+1 (rm,r) and grp*8+3 (r,rm).
	if op < 0x40 && (op&7 == 1 || op&7 == 3) {
		grp := int(op >> 3)
		reg, rm, err := r.modrm()
		if err != nil {
			return asm.Inst{}, err
		}
		if op&7 == 1 {
			return mk(aluName[grp], rm, asm.RegOp(asm.Reg32(reg)))
		}
		return mk(aluName[grp], asm.RegOp(asm.Reg32(reg)), rm)
	}

	switch {
	case op >= 0x40 && op <= 0x47:
		return mk("inc", asm.RegOp(asm.Reg32(int(op-0x40))))
	case op >= 0x48 && op <= 0x4F:
		return mk("dec", asm.RegOp(asm.Reg32(int(op-0x48))))
	case op >= 0x50 && op <= 0x57:
		return mk("push", asm.RegOp(asm.Reg32(int(op-0x50))))
	case op >= 0x58 && op <= 0x5F:
		return mk("pop", asm.RegOp(asm.Reg32(int(op-0x58))))
	case op >= 0x70 && op <= 0x7F:
		t, err := r.rel(1)
		if err != nil {
			return asm.Inst{}, err
		}
		return mk(ccName[op-0x70], t)
	case op >= 0xB0 && op <= 0xB7:
		v, err := r.i8()
		if err != nil {
			return asm.Inst{}, err
		}
		return mk("mov", asm.RegOp(asm.Reg8(int(op-0xB0))), asm.ImmOp(v))
	case op >= 0xB8 && op <= 0xBF:
		v, err := r.i32()
		if err != nil {
			return asm.Inst{}, err
		}
		return mk("mov", asm.RegOp(asm.Reg32(int(op-0xB8))), asm.ImmOp(v))
	}

	switch op {
	case 0x0F:
		op2, err := r.byte()
		if err != nil {
			return asm.Inst{}, err
		}
		switch {
		case op2 == 0xAF:
			reg, rm, err := r.modrm()
			if err != nil {
				return asm.Inst{}, err
			}
			return mk("imul", asm.RegOp(asm.Reg32(reg)), rm)
		case op2 >= 0x80 && op2 <= 0x8F:
			t, err := r.rel(4)
			if err != nil {
				return asm.Inst{}, err
			}
			return mk(ccName[op2-0x80], t)
		case op2 >= 0x90 && op2 <= 0x9F:
			_, rm, err := r.modrm8()
			if err != nil {
				return asm.Inst{}, err
			}
			return mk("set"+ccSuffix[op2-0x90], rm)
		case op2 >= 0x40 && op2 <= 0x4F:
			reg, rm, err := r.modrm()
			if err != nil {
				return asm.Inst{}, err
			}
			return mk("cmov"+ccSuffix[op2-0x40], asm.RegOp(asm.Reg32(reg)), rm)
		case op2 == 0xB6 || op2 == 0xBE:
			reg, rm, err := r.modrm8()
			if err != nil {
				return asm.Inst{}, err
			}
			name := "movzx"
			if op2 == 0xBE {
				name = "movsx"
			}
			return mk(name, asm.RegOp(asm.Reg32(reg)), rm)
		}
		return asm.Inst{}, fmt.Errorf("%w 0f %#02x at %#x", ErrBadOpcode, op2, r.ip)
	case 0x68:
		v, err := r.i32()
		if err != nil {
			return asm.Inst{}, err
		}
		return mk("push", asm.ImmOp(v))
	case 0x6A:
		v, err := r.i8()
		if err != nil {
			return asm.Inst{}, err
		}
		return mk("push", asm.ImmOp(v))
	case 0x69, 0x6B:
		reg, rm, err := r.modrm()
		if err != nil {
			return asm.Inst{}, err
		}
		var v int64
		if op == 0x69 {
			v, err = r.i32()
		} else {
			v, err = r.i8()
		}
		if err != nil {
			return asm.Inst{}, err
		}
		return mk("imul", asm.RegOp(asm.Reg32(reg)), rm, asm.ImmOp(v))
	case 0x81, 0x83:
		grp, rm, err := r.modrm()
		if err != nil {
			return asm.Inst{}, err
		}
		var v int64
		if op == 0x81 {
			v, err = r.i32()
		} else {
			v, err = r.i8()
		}
		if err != nil {
			return asm.Inst{}, err
		}
		return mk(aluName[grp], rm, asm.ImmOp(v))
	case 0x85:
		reg, rm, err := r.modrm()
		if err != nil {
			return asm.Inst{}, err
		}
		return mk("test", rm, asm.RegOp(asm.Reg32(reg)))
	case 0x88:
		reg, rm, err := r.modrm8()
		if err != nil {
			return asm.Inst{}, err
		}
		return mk("mov", rm, asm.RegOp(asm.Reg8(reg)))
	case 0x8A:
		reg, rm, err := r.modrm8()
		if err != nil {
			return asm.Inst{}, err
		}
		return mk("mov", asm.RegOp(asm.Reg8(reg)), rm)
	case 0x89:
		reg, rm, err := r.modrm()
		if err != nil {
			return asm.Inst{}, err
		}
		return mk("mov", rm, asm.RegOp(asm.Reg32(reg)))
	case 0x8B:
		reg, rm, err := r.modrm()
		if err != nil {
			return asm.Inst{}, err
		}
		return mk("mov", asm.RegOp(asm.Reg32(reg)), rm)
	case 0x8D:
		reg, rm, err := r.modrm()
		if err != nil {
			return asm.Inst{}, err
		}
		if !rm.IsMem() {
			// lea with a register source (ModRM mod=11) is #UD on hardware.
			return asm.Inst{}, fmt.Errorf("%w: lea with register source at %#x", ErrBadOpcode, r.ip)
		}
		return mk("lea", asm.RegOp(asm.Reg32(reg)), rm)
	case 0x8F:
		_, rm, err := r.modrm()
		if err != nil {
			return asm.Inst{}, err
		}
		return mk("pop", rm)
	case 0x90:
		return mk("nop")
	case 0x99:
		return mk("cdq")
	case 0xC1:
		digit, rm, err := r.modrm()
		if err != nil {
			return asm.Inst{}, err
		}
		name, ok := shiftName[digit]
		if !ok {
			return fail()
		}
		v, err := r.i8()
		if err != nil {
			return asm.Inst{}, err
		}
		return mk(name, rm, asm.ImmOp(v))
	case 0xC3:
		return mk("retn")
	case 0xC7:
		digit, rm, err := r.modrm()
		if err != nil {
			return asm.Inst{}, err
		}
		if digit != 0 {
			return fail()
		}
		v, err := r.i32()
		if err != nil {
			return asm.Inst{}, err
		}
		return mk("mov", rm, asm.ImmOp(v))
	case 0xC9:
		return mk("leave")
	case 0xE8:
		t, err := r.rel(4)
		if err != nil {
			return asm.Inst{}, err
		}
		return mk("call", t)
	case 0xE9:
		t, err := r.rel(4)
		if err != nil {
			return asm.Inst{}, err
		}
		return mk("jmp", t)
	case 0xEB:
		t, err := r.rel(1)
		if err != nil {
			return asm.Inst{}, err
		}
		return mk("jmp", t)
	case 0xF7:
		digit, rm, err := r.modrm()
		if err != nil {
			return asm.Inst{}, err
		}
		if digit == 0 {
			v, err := r.i32()
			if err != nil {
				return asm.Inst{}, err
			}
			return mk("test", rm, asm.ImmOp(v))
		}
		name, ok := unaryName[digit]
		if !ok {
			return fail()
		}
		return mk(name, rm)
	case 0xFF:
		digit, rm, err := r.modrm()
		if err != nil {
			return asm.Inst{}, err
		}
		switch digit {
		case 0:
			return mk("inc", rm)
		case 1:
			return mk("dec", rm)
		case 2:
			return mk("call", rm)
		case 4:
			return mk("jmp", rm)
		case 6:
			return mk("push", rm)
		}
		return fail()
	}
	return fail()
}
