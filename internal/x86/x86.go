// Package x86 implements a binary encoder (assembler) and decoder
// (disassembler) for a practical subset of the 32-bit x86 instruction set:
// the mov/alu/lea/imul/push/pop/shift/unary groups, calls, returns, and
// rel8/rel32 conditional and unconditional jumps, with full ModRM/SIB
// addressing ([base], [base+disp], [base+index*scale+disp], [disp32]).
//
// It is the disassembler substrate of the tracelet pipeline: binaries
// produced by the TinyC compiler (internal/tinyc) and packaged by
// internal/bin are decoded back to internal/asm instructions here, exactly
// as the paper's prototype used IDA Pro to lift executables to assembly.
package x86

import (
	"fmt"

	"repro/internal/asm"
)

// memRef is the canonical form of a memory operand:
// [base + index*scale + disp(+sym)].
type memRef struct {
	base  asm.Reg // RegNone if absent
	index asm.Reg // RegNone if absent
	scale int     // 1, 2, 4 or 8; meaningful when index != RegNone
	disp  int32
	sym   string // data symbol whose address is added to disp (abs32 fixup)
}

// canonMem folds an operand's offset-calculation term list into a memRef.
// Recognized term shapes: reg, imm, data-symbol, and reg*imm / imm*reg
// (expressed as consecutive terms joined by '*').
func canonMem(op asm.Operand) (memRef, error) {
	var m memRef
	m.scale = 1
	terms := op.Mem
	for i := 0; i < len(terms); i++ {
		t := terms[i]
		// A '*' on the *next* term means this term is part of a scaled
		// index pair.
		scaled := i+1 < len(terms) && terms[i+1].Op == asm.OpMul
		switch {
		case scaled:
			next := terms[i+1]
			var reg asm.Arg
			var imm asm.Arg
			if t.Arg.IsReg() && next.Arg.IsImm() {
				reg, imm = t.Arg, next.Arg
			} else if t.Arg.IsImm() && next.Arg.IsReg() {
				reg, imm = next.Arg, t.Arg
			} else {
				return m, fmt.Errorf("x86: unsupported scaled term in %s", op)
			}
			if t.Op == asm.OpSub {
				return m, fmt.Errorf("x86: subtracted index in %s", op)
			}
			if m.index != asm.RegNone {
				return m, fmt.Errorf("x86: two index registers in %s", op)
			}
			m.index = reg.Reg
			switch imm.Imm {
			case 1, 2, 4, 8:
				m.scale = int(imm.Imm)
			default:
				return m, fmt.Errorf("x86: bad scale %d in %s", imm.Imm, op)
			}
			i++ // consume the scale term
		case t.Arg.IsReg():
			if t.Op == asm.OpSub {
				return m, fmt.Errorf("x86: subtracted register in %s", op)
			}
			switch {
			case m.base == asm.RegNone:
				m.base = t.Arg.Reg
			case m.index == asm.RegNone:
				m.index = t.Arg.Reg
				m.scale = 1
			default:
				return m, fmt.Errorf("x86: three registers in %s", op)
			}
		case t.Arg.IsImm():
			v := t.Arg.Imm
			if t.Op == asm.OpSub {
				v = -v
			}
			m.disp += int32(v)
		case t.Arg.IsSym():
			if t.Arg.Cls != asm.SymData {
				return m, fmt.Errorf("x86: cannot encode symbol %s in %s", t.Arg.Sym, op)
			}
			if t.Op == asm.OpSub {
				return m, fmt.Errorf("x86: subtracted symbol in %s", op)
			}
			if m.sym != "" {
				return m, fmt.Errorf("x86: two symbols in %s", op)
			}
			m.sym = t.Arg.Sym
		default:
			return m, fmt.Errorf("x86: bad term in %s", op)
		}
	}
	if m.index == asm.ESP {
		return m, fmt.Errorf("x86: esp cannot be an index register in %s", op)
	}
	return m, nil
}

// memOperand converts a canonical memRef back to an asm memory operand.
func (m memRef) operand() asm.Operand {
	var terms []asm.MemTerm
	if m.base != asm.RegNone {
		terms = append(terms, asm.MemTerm{Op: asm.OpAdd, Arg: asm.RegArg(m.base)})
	}
	if m.index != asm.RegNone {
		terms = append(terms, asm.MemTerm{Op: asm.OpAdd, Arg: asm.RegArg(m.index)})
		if m.scale != 1 {
			terms = append(terms, asm.MemTerm{Op: asm.OpMul, Arg: asm.ImmArg(int64(m.scale))})
		}
	}
	if m.disp != 0 || len(terms) == 0 {
		op := asm.OpAdd
		d := int64(m.disp)
		if d < 0 && len(terms) > 0 {
			op, d = asm.OpSub, -d
		}
		terms = append(terms, asm.MemTerm{Op: op, Arg: asm.ImmArg(d)})
	}
	return asm.MemOperand(terms...)
}

// FixupKind describes how a fixup patches encoded bytes.
type FixupKind uint8

const (
	// FixupAbs32 writes the absolute 32-bit address of the symbol, added
	// to the value already present in the field.
	FixupAbs32 FixupKind = iota
	// FixupRel32 writes target − next-instruction-address as a signed
	// 32-bit displacement.
	FixupRel32
)

// Fixup records a hole in encoded machine code that the linker must patch.
type Fixup struct {
	Kind   FixupKind
	Off    int          // byte offset of the 4-byte field within the code
	NextIP int          // byte offset of the following instruction (rel32 base)
	Sym    string       // symbol to resolve
	Class  asm.SymClass // symbol class, for resolver routing
}
