package x86

import (
	"encoding/binary"
	"fmt"

	"repro/internal/asm"
)

// aluGroup maps the eight classic ALU mnemonics to their /digit group and
// base opcode row.
var aluGroup = map[string]int{
	"add": 0, "or": 1, "adc": 2, "sbb": 3,
	"and": 4, "sub": 5, "xor": 6, "cmp": 7,
}

// shiftGroup maps shift/rotate mnemonics to their C1 /digit.
var shiftGroup = map[string]int{
	"rol": 0, "ror": 1, "shl": 4, "shr": 5, "sar": 7,
}

// unaryGroup maps F7 /digit unary mnemonics.
var unaryGroup = map[string]int{
	"not": 2, "neg": 3, "mul": 4, "imul": 5, "div": 6, "idiv": 7,
}

// ccNum maps conditional-jump mnemonics to their condition code (the low
// nibble of the 0F 8x opcode).
var ccNum = map[string]int{
	"jo": 0, "jno": 1, "jb": 2, "jae": 3,
	"je": 4, "jz": 4, "jne": 5, "jnz": 5,
	"jbe": 6, "ja": 7, "js": 8, "jns": 9,
	"jp": 10, "jnp": 11, "jl": 12, "jge": 13, "jle": 14, "jg": 15,
}

// setccNum maps setcc/cmovcc condition suffixes to condition codes.
var setccNum = map[string]int{
	"o": 0, "no": 1, "b": 2, "ae": 3, "e": 4, "z": 4, "ne": 5, "nz": 5,
	"be": 6, "a": 7, "s": 8, "ns": 9, "p": 10, "np": 11,
	"l": 12, "ge": 13, "le": 14, "g": 15,
}

type encoder struct {
	buf    []byte
	fixups []Fixup
}

func (e *encoder) byte(b byte) { e.buf = append(e.buf, b) }

func (e *encoder) imm8(v int64) { e.buf = append(e.buf, byte(int8(v))) }

func (e *encoder) imm32(v int64) {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], uint32(int32(v)))
	e.buf = append(e.buf, w[:]...)
}

// abs32 emits a 4-byte absolute-address field holding the addend and
// records a fixup for sym.
func (e *encoder) abs32(sym string, class asm.SymClass, addend int32) {
	e.fixups = append(e.fixups, Fixup{Kind: FixupAbs32, Off: len(e.buf), Sym: sym, Class: class})
	e.imm32(int64(addend))
}

func fitsInt8(v int64) bool { return v >= -128 && v <= 127 }

func regBits(r asm.Reg) (int, error) {
	if !r.Is32() {
		return 0, fmt.Errorf("x86: register %s is not encodable (32-bit GPRs only)", r)
	}
	return r.Num32(), nil
}

// reg8Modrm encodes a ModRM byte whose r/m field is an 8-bit register.
func (e *encoder) reg8Modrm(regField int, r asm.Reg) error {
	if !r.Is8() {
		return fmt.Errorf("x86: %s is not an 8-bit register", r)
	}
	e.byte(byte(0xC0 | regField<<3 | r.Num8()))
	return nil
}

var scaleBits = map[int]byte{1: 0, 2: 1, 4: 2, 8: 3}

// modrm encodes the ModRM byte (plus SIB and displacement) for the given
// reg-field value and r/m operand.
func (e *encoder) modrm(regField int, op asm.Operand) error {
	if !op.IsMem() {
		if !op.Arg.IsReg() {
			return fmt.Errorf("x86: r/m operand %s is neither register nor memory", op)
		}
		rm, err := regBits(op.Arg.Reg)
		if err != nil {
			return err
		}
		e.byte(byte(0xC0 | regField<<3 | rm))
		return nil
	}
	m, err := canonMem(op)
	if err != nil {
		return err
	}
	emitDisp := func(mod int) {
		// mod chosen by caller: 0 none (or disp32-no-base), 1 disp8, 2 disp32.
		switch mod {
		case 1:
			e.imm8(int64(m.disp))
		case 2:
			if m.sym != "" {
				e.abs32(m.sym, asm.SymData, m.disp)
			} else {
				e.imm32(int64(m.disp))
			}
		}
	}
	// Absolute address, no registers: mod=00 rm=101 disp32.
	if m.base == asm.RegNone && m.index == asm.RegNone {
		e.byte(byte(regField<<3 | 0b101))
		emitDisp(2)
		return nil
	}
	// Index but no base: mod=00 rm=100, SIB with base=101, disp32.
	if m.base == asm.RegNone {
		idx, err := regBits(m.index)
		if err != nil {
			return err
		}
		e.byte(byte(regField<<3 | 0b100))
		e.byte(scaleBits[m.scale]<<6 | byte(idx)<<3 | 0b101)
		emitDisp(2)
		return nil
	}
	base, err := regBits(m.base)
	if err != nil {
		return err
	}
	// Choose mod by displacement width. [ebp] needs an explicit disp.
	mod := 0
	switch {
	case m.sym != "" || !fitsInt8(int64(m.disp)):
		mod = 2
	case m.disp != 0 || m.base == asm.EBP:
		mod = 1
	}
	needSIB := m.index != asm.RegNone || m.base == asm.ESP
	if !needSIB {
		e.byte(byte(mod<<6 | regField<<3 | base))
		emitDisp(mod)
		return nil
	}
	idx := 0b100 // "no index"
	if m.index != asm.RegNone {
		idx, err = regBits(m.index)
		if err != nil {
			return err
		}
	}
	e.byte(byte(mod<<6 | regField<<3 | 0b100))
	e.byte(scaleBits[m.scale]<<6 | byte(idx)<<3 | byte(base))
	emitDisp(mod)
	return nil
}

// EncodeInst encodes a single non-jump instruction (jumps are encoded by
// AssembleFunc, which performs rel8/rel32 relaxation). Calls to symbolic
// targets and references to data symbols produce fixups.
func EncodeInst(in asm.Inst) ([]byte, []Fixup, error) {
	var e encoder
	if err := e.inst(in); err != nil {
		return nil, nil, err
	}
	// Rebase NextIP: for single-inst encoding every fixup's rel base is the
	// end of this instruction.
	for i := range e.fixups {
		e.fixups[i].NextIP = len(e.buf)
	}
	return e.buf, e.fixups, nil
}

func (e *encoder) inst(in asm.Inst) error {
	ops := in.Ops
	switch in.Mnemonic {
	case "nop":
		e.byte(0x90)
	case "ret", "retn":
		e.byte(0xC3)
	case "leave":
		e.byte(0xC9)
	case "cdq":
		e.byte(0x99)
	case "mov":
		return e.mov(ops)
	case "add", "or", "adc", "sbb", "and", "sub", "xor", "cmp":
		return e.alu(aluGroup[in.Mnemonic], ops)
	case "test":
		return e.test(ops)
	case "lea":
		return e.lea(ops)
	case "imul":
		return e.imul(ops)
	case "push":
		return e.push(ops)
	case "pop":
		return e.pop(ops)
	case "inc", "dec":
		return e.incdec(in.Mnemonic, ops)
	case "not", "neg", "mul", "div", "idiv":
		if len(ops) != 1 {
			return fmt.Errorf("x86: %s needs 1 operand", in.Mnemonic)
		}
		e.byte(0xF7)
		return e.modrm(unaryGroup[in.Mnemonic], ops[0])
	case "shl", "shr", "sar", "rol", "ror":
		return e.shift(shiftGroup[in.Mnemonic], ops)
	case "call":
		return e.call(ops)
	case "jmp":
		// Indirect forms only (register or memory, e.g. jump tables);
		// direct label jumps are encoded by AssembleFunc.
		if len(ops) == 1 && (ops[0].IsMem() || ops[0].Arg.IsReg()) {
			e.byte(0xFF)
			return e.modrm(4, ops[0])
		}
		return fmt.Errorf("x86: jmp form must be assembled via AssembleFunc")
	case "movzx", "movsx":
		return e.movx(in.Mnemonic, ops)
	default:
		if cc, ok := ccFromMnemonic(in.Mnemonic, "set"); ok {
			return e.setcc(cc, ops)
		}
		if cc, ok := ccFromMnemonic(in.Mnemonic, "cmov"); ok {
			return e.cmovcc(cc, ops)
		}
		return fmt.Errorf("x86: cannot encode mnemonic %q", in.Mnemonic)
	}
	if len(ops) != 0 {
		return fmt.Errorf("x86: %s takes no operands", in.Mnemonic)
	}
	return nil
}

func (e *encoder) mov(ops []asm.Operand) error {
	if len(ops) != 2 {
		return fmt.Errorf("x86: mov needs 2 operands")
	}
	dst, src := ops[0], ops[1]
	// 8-bit forms: mov r8, r8 (8A /r), mov r8, imm8 (B0+r), and the
	// memory moves mov r8, m8 (8A /r) / mov m8, r8 (88 /r).
	if !dst.IsMem() && dst.Arg.IsReg() && dst.Arg.Reg.Is8() {
		switch {
		case !src.IsMem() && src.Arg.IsReg() && src.Arg.Reg.Is8():
			e.byte(0x8A)
			return e.reg8Modrm(dst.Arg.Reg.Num8(), src.Arg.Reg)
		case !src.IsMem() && src.Arg.IsImm():
			e.byte(byte(0xB0 + dst.Arg.Reg.Num8()))
			e.imm8(src.Arg.Imm)
			return nil
		case src.IsMem():
			e.byte(0x8A)
			return e.modrm(dst.Arg.Reg.Num8(), src)
		}
		return fmt.Errorf("x86: unsupported 8-bit mov form %s, %s", dst, src)
	}
	if !src.IsMem() && src.Arg.IsReg() && src.Arg.Reg.Is8() {
		if dst.IsMem() {
			e.byte(0x88)
			return e.modrm(src.Arg.Reg.Num8(), dst)
		}
		return fmt.Errorf("x86: unsupported 8-bit mov form %s, %s", dst, src)
	}
	switch {
	case !dst.IsMem() && dst.Arg.IsReg() && !src.IsMem() && src.Arg.IsImm():
		n, err := regBits(dst.Arg.Reg)
		if err != nil {
			return err
		}
		e.byte(byte(0xB8 + n))
		e.imm32(src.Arg.Imm)
	case !dst.IsMem() && dst.Arg.IsReg() && !src.IsMem() && src.Arg.IsSym() && src.Offset:
		n, err := regBits(dst.Arg.Reg)
		if err != nil {
			return err
		}
		e.byte(byte(0xB8 + n))
		e.abs32(src.Arg.Sym, src.Arg.Cls, 0)
	case !src.IsMem() && src.Arg.IsReg():
		e.byte(0x89)
		n, err := regBits(src.Arg.Reg)
		if err != nil {
			return err
		}
		return e.modrm(n, dst)
	case !dst.IsMem() && dst.Arg.IsReg() && src.IsMem():
		e.byte(0x8B)
		n, err := regBits(dst.Arg.Reg)
		if err != nil {
			return err
		}
		return e.modrm(n, src)
	case !src.IsMem() && src.Arg.IsImm():
		e.byte(0xC7)
		if err := e.modrm(0, dst); err != nil {
			return err
		}
		e.imm32(src.Arg.Imm)
	case !src.IsMem() && src.Arg.IsSym() && src.Offset:
		e.byte(0xC7)
		if err := e.modrm(0, dst); err != nil {
			return err
		}
		e.abs32(src.Arg.Sym, src.Arg.Cls, 0)
	default:
		return fmt.Errorf("x86: unsupported mov form %s, %s", dst, src)
	}
	return nil
}

func (e *encoder) alu(grp int, ops []asm.Operand) error {
	if len(ops) != 2 {
		return fmt.Errorf("x86: alu op needs 2 operands")
	}
	dst, src := ops[0], ops[1]
	switch {
	case !src.IsMem() && src.Arg.IsReg():
		e.byte(byte(grp*8 + 1))
		n, err := regBits(src.Arg.Reg)
		if err != nil {
			return err
		}
		return e.modrm(n, dst)
	case !dst.IsMem() && dst.Arg.IsReg() && src.IsMem():
		e.byte(byte(grp*8 + 3))
		n, err := regBits(dst.Arg.Reg)
		if err != nil {
			return err
		}
		return e.modrm(n, src)
	case !src.IsMem() && src.Arg.IsImm():
		if fitsInt8(src.Arg.Imm) {
			e.byte(0x83)
			if err := e.modrm(grp, dst); err != nil {
				return err
			}
			e.imm8(src.Arg.Imm)
			return nil
		}
		e.byte(0x81)
		if err := e.modrm(grp, dst); err != nil {
			return err
		}
		e.imm32(src.Arg.Imm)
	case !src.IsMem() && src.Arg.IsSym() && src.Offset:
		e.byte(0x81)
		if err := e.modrm(grp, dst); err != nil {
			return err
		}
		e.abs32(src.Arg.Sym, src.Arg.Cls, 0)
	default:
		return fmt.Errorf("x86: unsupported alu form %s, %s", dst, src)
	}
	return nil
}

func (e *encoder) test(ops []asm.Operand) error {
	if len(ops) != 2 {
		return fmt.Errorf("x86: test needs 2 operands")
	}
	dst, src := ops[0], ops[1]
	switch {
	case !src.IsMem() && src.Arg.IsReg():
		e.byte(0x85)
		n, err := regBits(src.Arg.Reg)
		if err != nil {
			return err
		}
		return e.modrm(n, dst)
	case !src.IsMem() && src.Arg.IsImm():
		e.byte(0xF7)
		if err := e.modrm(0, dst); err != nil {
			return err
		}
		e.imm32(src.Arg.Imm)
		return nil
	}
	return fmt.Errorf("x86: unsupported test form %s, %s", dst, src)
}

func (e *encoder) lea(ops []asm.Operand) error {
	if len(ops) != 2 || ops[0].IsMem() || !ops[0].Arg.IsReg() || !ops[1].IsMem() {
		return fmt.Errorf("x86: lea needs reg, mem")
	}
	e.byte(0x8D)
	n, err := regBits(ops[0].Arg.Reg)
	if err != nil {
		return err
	}
	return e.modrm(n, ops[1])
}

func (e *encoder) imul(ops []asm.Operand) error {
	switch len(ops) {
	case 1:
		e.byte(0xF7)
		return e.modrm(unaryGroup["imul"], ops[0])
	case 2:
		if ops[0].IsMem() || !ops[0].Arg.IsReg() {
			return fmt.Errorf("x86: imul dst must be a register")
		}
		e.byte(0x0F)
		e.byte(0xAF)
		n, err := regBits(ops[0].Arg.Reg)
		if err != nil {
			return err
		}
		return e.modrm(n, ops[1])
	case 3:
		if ops[0].IsMem() || !ops[0].Arg.IsReg() || ops[2].IsMem() || !ops[2].Arg.IsImm() {
			return fmt.Errorf("x86: imul needs reg, r/m, imm")
		}
		n, err := regBits(ops[0].Arg.Reg)
		if err != nil {
			return err
		}
		v := ops[2].Arg.Imm
		if fitsInt8(v) {
			e.byte(0x6B)
			if err := e.modrm(n, ops[1]); err != nil {
				return err
			}
			e.imm8(v)
			return nil
		}
		e.byte(0x69)
		if err := e.modrm(n, ops[1]); err != nil {
			return err
		}
		e.imm32(v)
		return nil
	}
	return fmt.Errorf("x86: imul needs 1-3 operands")
}

func (e *encoder) push(ops []asm.Operand) error {
	if len(ops) != 1 {
		return fmt.Errorf("x86: push needs 1 operand")
	}
	op := ops[0]
	switch {
	case !op.IsMem() && op.Arg.IsReg():
		n, err := regBits(op.Arg.Reg)
		if err != nil {
			return err
		}
		e.byte(byte(0x50 + n))
	case !op.IsMem() && op.Arg.IsImm():
		if fitsInt8(op.Arg.Imm) {
			e.byte(0x6A)
			e.imm8(op.Arg.Imm)
			return nil
		}
		e.byte(0x68)
		e.imm32(op.Arg.Imm)
	case !op.IsMem() && op.Arg.IsSym() && op.Offset:
		e.byte(0x68)
		e.abs32(op.Arg.Sym, op.Arg.Cls, 0)
	case op.IsMem():
		e.byte(0xFF)
		return e.modrm(6, op)
	default:
		return fmt.Errorf("x86: unsupported push form %s", op)
	}
	return nil
}

func (e *encoder) pop(ops []asm.Operand) error {
	if len(ops) != 1 {
		return fmt.Errorf("x86: pop needs 1 operand")
	}
	op := ops[0]
	if !op.IsMem() && op.Arg.IsReg() {
		n, err := regBits(op.Arg.Reg)
		if err != nil {
			return err
		}
		e.byte(byte(0x58 + n))
		return nil
	}
	if op.IsMem() {
		e.byte(0x8F)
		return e.modrm(0, op)
	}
	return fmt.Errorf("x86: unsupported pop form %s", op)
}

func (e *encoder) incdec(mnemonic string, ops []asm.Operand) error {
	if len(ops) != 1 {
		return fmt.Errorf("x86: %s needs 1 operand", mnemonic)
	}
	op := ops[0]
	if !op.IsMem() && op.Arg.IsReg() {
		n, err := regBits(op.Arg.Reg)
		if err != nil {
			return err
		}
		base := 0x40
		if mnemonic == "dec" {
			base = 0x48
		}
		e.byte(byte(base + n))
		return nil
	}
	e.byte(0xFF)
	digit := 0
	if mnemonic == "dec" {
		digit = 1
	}
	return e.modrm(digit, op)
}

func (e *encoder) shift(digit int, ops []asm.Operand) error {
	if len(ops) != 2 || ops[1].IsMem() || !ops[1].Arg.IsImm() {
		return fmt.Errorf("x86: shift needs r/m, imm8")
	}
	e.byte(0xC1)
	if err := e.modrm(digit, ops[0]); err != nil {
		return err
	}
	e.imm8(ops[1].Arg.Imm)
	return nil
}

// ccFromMnemonic extracts a condition code from a prefixed mnemonic.
func ccFromMnemonic(m, prefix string) (int, bool) {
	if len(m) <= len(prefix) || m[:len(prefix)] != prefix {
		return 0, false
	}
	cc, ok := setccNum[m[len(prefix):]]
	return cc, ok
}

// movx encodes movzx/movsx r32, r/m8 (0F B6 / 0F BE).
func (e *encoder) movx(m string, ops []asm.Operand) error {
	if len(ops) != 2 || ops[0].IsMem() || !ops[0].Arg.IsReg() {
		return fmt.Errorf("x86: %s needs r32, r/m8", m)
	}
	n, err := regBits(ops[0].Arg.Reg)
	if err != nil {
		return err
	}
	e.byte(0x0F)
	if m == "movzx" {
		e.byte(0xB6)
	} else {
		e.byte(0xBE)
	}
	src := ops[1]
	if !src.IsMem() && src.Arg.IsReg() {
		return e.reg8Modrm(n, src.Arg.Reg)
	}
	if src.IsMem() {
		return e.modrm(n, src)
	}
	return fmt.Errorf("x86: %s source must be r/m8", m)
}

// setcc encodes setcc r/m8 (0F 90+cc).
func (e *encoder) setcc(cc int, ops []asm.Operand) error {
	if len(ops) != 1 {
		return fmt.Errorf("x86: setcc needs 1 operand")
	}
	e.byte(0x0F)
	e.byte(byte(0x90 + cc))
	op := ops[0]
	if !op.IsMem() && op.Arg.IsReg() {
		return e.reg8Modrm(0, op.Arg.Reg)
	}
	if op.IsMem() {
		return e.modrm(0, op)
	}
	return fmt.Errorf("x86: setcc operand must be r/m8")
}

// cmovcc encodes cmovcc r32, r/m32 (0F 40+cc).
func (e *encoder) cmovcc(cc int, ops []asm.Operand) error {
	if len(ops) != 2 || ops[0].IsMem() || !ops[0].Arg.IsReg() {
		return fmt.Errorf("x86: cmov needs r32, r/m32")
	}
	n, err := regBits(ops[0].Arg.Reg)
	if err != nil {
		return err
	}
	e.byte(0x0F)
	e.byte(byte(0x40 + cc))
	return e.modrm(n, ops[1])
}

func (e *encoder) call(ops []asm.Operand) error {
	if len(ops) != 1 {
		return fmt.Errorf("x86: call needs 1 operand")
	}
	op := ops[0]
	switch {
	case !op.IsMem() && op.Arg.IsSym():
		e.byte(0xE8)
		e.fixups = append(e.fixups, Fixup{Kind: FixupRel32, Off: len(e.buf), Sym: op.Arg.Sym, Class: op.Arg.Cls})
		e.imm32(0)
	case !op.IsMem() && op.Arg.IsImm():
		// Absolute target expressed as rel32 at link time is not
		// supported; immediate targets only appear decoded, not encoded.
		return fmt.Errorf("x86: call to raw immediate not encodable")
	case !op.IsMem() && op.Arg.IsReg():
		e.byte(0xFF)
		return e.modrm(2, op)
	case op.IsMem():
		e.byte(0xFF)
		return e.modrm(2, op)
	}
	return nil
}
