package x86

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the instruction decoder. Whatever
// the input, the decoder must either succeed or reject it with one of
// the two typed errors — never panic, never return a generic error, and
// never report an instruction longer than the input. Anything it does
// accept must survive a semantic round trip: re-encoding and re-decoding
// yields the same instruction. (Byte identity is deliberately not
// required here — the fuzzer feeds non-canonical encodings like imm32
// forms of imm8-sized constants, which re-encode shorter; byte-for-byte
// identity over canonical encodings is checked by internal/difftest.)
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0x89, 0xd8})                         // mov eax, ebx
	f.Add([]byte{0x83, 0xc0, 0x07})                   // add eax, 7
	f.Add([]byte{0x8b, 0x45, 0xfc})                   // mov eax, [ebp-4]
	f.Add([]byte{0xb8, 0x2a, 0x00, 0x00, 0x00})       // mov eax, 42
	f.Add([]byte{0x0f, 0x94, 0xc0})                   // sete al
	f.Add([]byte{0x0f, 0xaf, 0xc3})                   // imul eax, ebx
	f.Add([]byte{0xc3})                               // ret
	f.Add([]byte{0xe8, 0x00, 0x00, 0x00, 0x00})       // call +0
	f.Add([]byte{0x74, 0xfe})                         // je self
	f.Add([]byte{0x8d, 0x44, 0x98, 0x04})             // lea eax, [eax+ebx*4+4]
	f.Add([]byte{0xf7, 0xd8})                         // neg eax
	f.Add([]byte{0x99})                               // cdq
	f.Add([]byte{0x0f})                               // truncated two-byte opcode
	f.Add([]byte{0x83, 0xc0})                         // truncated immediate
	f.Add([]byte{0xd9, 0xee})                         // unsupported (x87)
	f.Add([]byte{0x8b, 0x85, 0x01, 0x02})             // truncated disp32
	f.Add(bytes.Repeat([]byte{0x90}, 16))             // nop sled
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		in, n, err := Decode(data, 0x1000)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadOpcode) {
				t.Fatalf("Decode(% x) returned an untyped error: %v", data, err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("Decode(% x) claimed length %d of %d input bytes", data, n, len(data))
		}
		if in.IsControlFlow() {
			return // relative targets are decoded absolute; only AssembleFunc restores them
		}
		enc, fixups, err := EncodeInst(in)
		if err != nil {
			t.Fatalf("decoded %q from % x but re-encode failed: %v", in, data[:n], err)
		}
		if len(fixups) != 0 {
			t.Fatalf("re-encoding decoded %q produced %d fixups", in, len(fixups))
		}
		again, m, err := Decode(enc, 0x1000)
		if err != nil || m != len(enc) {
			t.Fatalf("re-encoded %q as % x but re-decode failed: %v (len %d)", in, enc, err, m)
		}
		if !in.Equal(again) {
			t.Fatalf("semantic round trip of % x: %q != %q", data[:n], in, again)
		}
	})
}

// FuzzDecodeAll checks the streaming decoder on arbitrary byte runs: it
// must never panic and must account for every byte it claims to have
// consumed.
func FuzzDecodeAll(f *testing.F) {
	f.Add([]byte{0x55, 0x89, 0xe5, 0x5d, 0xc3}) // push ebp; mov ebp,esp; pop ebp; ret
	f.Add([]byte{0x90, 0x90, 0x0f})             // nops then truncation
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := DecodeAll(data, 0x2000)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadOpcode) {
				t.Fatalf("DecodeAll(% x) returned an untyped error: %v", data, err)
			}
			return
		}
		total := 0
		for _, d := range decoded {
			if d.Len <= 0 {
				t.Fatalf("instruction %q at %#x has length %d", d.Inst, d.Addr, d.Len)
			}
			total += d.Len
		}
		if total != len(data) {
			t.Fatalf("DecodeAll consumed %d of %d bytes without error", total, len(data))
		}
	})
}
