package align

import (
	"sort"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/tracelet"
)

// listing builds a CFG from assembly text (test helper mirroring the
// tracelet package tests).
func listing(t *testing.T, name, src string) *cfg.Graph {
	t.Helper()
	insts, labels, err := asm.ParseListing(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.BuildListing(name, insts, labels)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEmptyTracelet pins down the degenerate cases: empty instruction
// sequences score zero against anything, produce no aligned pairs, and
// normalize to zero rather than NaN.
func TestEmptyTracelet(t *testing.T) {
	seq := insts(t, "push ebp", "mov ebp, esp", "retn")
	if got := Score(nil, nil); got != 0 {
		t.Errorf("Score(nil, nil) = %d, want 0", got)
	}
	if got := Score(nil, seq); got != 0 {
		t.Errorf("Score(nil, seq) = %d, want 0", got)
	}
	if got := Score(seq, nil); got != 0 {
		t.Errorf("Score(seq, nil) = %d, want 0", got)
	}
	if got := IdentityScore(nil); got != 0 {
		t.Errorf("IdentityScore(nil) = %d, want 0", got)
	}
	a := Align(nil, seq)
	if a.Score != 0 || len(a.Pairs) != 0 || len(a.Deleted) != 0 || len(a.Inserted) != len(seq) {
		t.Errorf("Align(nil, seq) = %+v, want all-inserted", a)
	}
	b := Align(seq, nil)
	if b.Score != 0 || len(b.Pairs) != 0 || len(b.Inserted) != 0 || len(b.Deleted) != len(seq) {
		t.Errorf("Align(seq, nil) = %+v, want all-deleted", b)
	}
	// An empty tracelet (e.g. a basic block that was nothing but its jump)
	// must normalize to 0 against everything, including itself.
	empty := &tracelet.Tracelet{Blocks: [][]asm.Inst{nil}}
	s := Score(empty.Insts(), seq)
	for _, m := range []Method{Ratio, Containment} {
		if got := Norm(s, IdentityScore(empty.Insts()), IdentityScore(seq), m); got != 0 {
			t.Errorf("Norm(empty vs seq, %v) = %v, want 0", m, got)
		}
		if got := Norm(0, 0, 0, m); got != 0 {
			t.Errorf("Norm(empty vs empty, %v) = %v, want 0", m, got)
		}
	}
}

// TestK1SingleBlockTracelets exercises the k=1 boundary: every basic
// block yields a single-block tracelet, and blocks consisting only of a
// jump yield empty tracelets that score 0 but never crash or divide by
// zero.
func TestK1SingleBlockTracelets(t *testing.T) {
	g := listing(t, "k1", `
		cmp esi, 1
		jz done
		mov eax, 2
		jmp done
	done:
		retn
	`)
	ts := tracelet.Extract(g, 1)
	if len(ts) != len(g.Blocks) {
		t.Fatalf("k=1 extracted %d tracelets from %d blocks", len(ts), len(g.Blocks))
	}
	for _, tr := range ts {
		if tr.K() != 1 {
			t.Fatalf("k=1 tracelet has %d blocks", tr.K())
		}
		self := tr.Insts()
		ident := IdentityScore(self)
		if got := Score(self, self); got != ident {
			t.Errorf("k=1 self-score %d != identity %d for %q", got, ident, tr)
		}
		want := 1.0
		if len(self) == 0 {
			want = 0 // jump-only block: stripped body is empty
		}
		for _, m := range []Method{Ratio, Containment} {
			if got := Norm(Score(self, self), ident, ident, m); got != want {
				t.Errorf("k=1 self-norm(%v) = %v, want %v for %q", m, got, want, tr)
			}
		}
	}
	// The graph above has one jump-only control transfer; make sure at
	// least one non-empty and the cross-block scores respect the identity
	// ceiling.
	for _, a := range ts {
		for _, b := range ts {
			s := Score(a.Insts(), b.Insts())
			ia, ib := IdentityScore(a.Insts()), IdentityScore(b.Insts())
			min := ia
			if ib < min {
				min = ib
			}
			if s > min {
				t.Errorf("cross score %d exceeds min identity %d (%q vs %q)", s, min, a, b)
			}
		}
	}
}

// TestJumpTargetOnlyDifference checks the core stripping property of
// tracelet extraction (paper Section 4.2.1): two functions whose only
// difference is their jump instructions — condition sense and therefore
// target — produce identical tracelets, and those tracelets score exactly
// 1.0 against each other.
func TestJumpTargetOnlyDifference(t *testing.T) {
	gA := listing(t, "fnA", `
		cmp esi, 1
		jz arm
		mov eax, 2
		jmp done
	arm:
		mov ecx, 1
	done:
		retn
	`)
	gB := listing(t, "fnB", `
		cmp esi, 1
		jnz arm
		mov eax, 2
		jmp done
	arm:
		mov ecx, 1
	done:
		retn
	`)
	for _, k := range []int{1, 2, 3} {
		tsA, tsB := tracelet.Extract(gA, k), tracelet.Extract(gB, k)
		if len(tsA) != len(tsB) {
			t.Fatalf("k=%d: %d vs %d tracelets", k, len(tsA), len(tsB))
		}
		sa, sb := traceletStrings(tsA), traceletStrings(tsB)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Errorf("k=%d tracelet %d differs despite jump-only change:\n%s\nvs\n%s",
					k, i, sa[i], sb[i])
			}
		}
		// And the alignment agrees: every A-tracelet has a B-tracelet at
		// similarity exactly 1.0.
		for _, ta := range tsA {
			best := 0.0
			for _, tb := range tsB {
				s := Score(ta.Insts(), tb.Insts())
				n := Norm(s, IdentityScore(ta.Insts()), IdentityScore(tb.Insts()), Ratio)
				if n > best {
					best = n
				}
			}
			if ta.NumInsts() > 0 && best != 1.0 {
				t.Errorf("k=%d: tracelet %q best cross-binary score %v, want exactly 1.0", k, ta, best)
			}
		}
	}
}

func traceletStrings(ts []*tracelet.Tracelet) []string {
	out := make([]string, len(ts))
	for i, tr := range ts {
		out[i] = tr.String()
	}
	sort.Strings(out)
	return out
}

// TestIdenticalTraceletsExactlyOne asserts the self-similarity identity is
// exact, not approximate: for every tracelet of a realistic function, the
// normalized self-score is precisely 1.0 under both methods (the floating
// division 2s/(s+s) and s/min(s,s) must not introduce error).
func TestIdenticalTraceletsExactlyOne(t *testing.T) {
	g := listing(t, "real", `
		push ebp
		mov ebp, esp
		sub esp, 18h
		cmp esi, 1
		jz b3
		mov eax, 2
		mov [esp+18h+var_14], ecx
		jmp b5
	b3:
		mov ecx, 1
		call _printf
	b5:
		mov esp, ebp
		pop ebp
		retn
	`)
	checked := 0
	for _, k := range []int{1, 2, 3} {
		for _, tr := range tracelet.Extract(g, k) {
			self := tr.Insts()
			if len(self) == 0 {
				continue
			}
			s := Score(self, self)
			ident := IdentityScore(self)
			if s != ident {
				t.Fatalf("self-score %d != identity %d for %q", s, ident, tr)
			}
			if got := Norm(s, ident, ident, Ratio); got != 1.0 {
				t.Errorf("Ratio self-norm = %v, want exactly 1.0 for %q", got, tr)
			}
			if got := Norm(s, ident, ident, Containment); got != 1.0 {
				t.Errorf("Containment self-norm = %v, want exactly 1.0 for %q", got, tr)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no tracelets checked")
	}
}
