package align

import "repro/internal/asm"

// ScoreBlocks computes the tracelet similarity score blockwise: the
// instruction alignment is performed with respect to basic-block
// boundaries, so instructions from reference block i can only match
// instructions from target block i (the granularity optimization of paper
// Section 5.2). The tracelets must have the same number of blocks;
// otherwise the concatenated sequences are aligned as a whole.
func ScoreBlocks(ref, tgt [][]asm.Inst) int {
	if len(ref) != len(tgt) {
		return Score(concat(ref), concat(tgt))
	}
	s := 0
	for i := range ref {
		s += Score(ref[i], tgt[i])
	}
	return s
}

// AlignBlocks computes a full blockwise alignment. Pair indices refer to
// the concatenated instruction sequences of each tracelet.
func AlignBlocks(ref, tgt [][]asm.Inst) Alignment {
	if len(ref) != len(tgt) {
		return Align(concat(ref), concat(tgt))
	}
	var out Alignment
	refOff, tgtOff := 0, 0
	for i := range ref {
		a := Align(ref[i], tgt[i])
		out.Score += a.Score
		for _, p := range a.Pairs {
			out.Pairs = append(out.Pairs, Pair{Ref: p.Ref + refOff, Tgt: p.Tgt + tgtOff})
		}
		for _, d := range a.Deleted {
			out.Deleted = append(out.Deleted, d+refOff)
		}
		for _, ins := range a.Inserted {
			out.Inserted = append(out.Inserted, ins+tgtOff)
		}
		refOff += len(ref[i])
		tgtOff += len(tgt[i])
	}
	return out
}

func concat(blocks [][]asm.Inst) []asm.Inst {
	var out []asm.Inst
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}
