package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/asm"
)

func insts(t *testing.T, lines ...string) []asm.Inst {
	t.Helper()
	out := make([]asm.Inst, len(lines))
	for i, l := range lines {
		in, err := asm.Parse(l)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = in
	}
	return out
}

// TestSimPaperValues checks the exact values quoted in Section 4.3: "the
// score of comparing push ebp; with itself is 3, whereas the score of add
// ebp,eax with add esp,ebx is only 2".
func TestSimPaperValues(t *testing.T) {
	push := asm.MustParse("push ebp")
	if got := Sim(push, push); got != 3 {
		t.Errorf("Sim(push ebp, push ebp) = %d, want 3", got)
	}
	a := asm.MustParse("add ebp, eax")
	b := asm.MustParse("add esp, ebx")
	if got := Sim(a, b); got != 2 {
		t.Errorf("Sim(add ebp,eax; add esp,ebx) = %d, want 2", got)
	}
	// Different kinds are -1.
	c := asm.MustParse("mov ebp, eax")
	if got := Sim(a, c); got != -1 {
		t.Errorf("Sim across mnemonics = %d, want -1", got)
	}
	d := asm.MustParse("add ebp, 1")
	if got := Sim(a, d); got != -1 {
		t.Errorf("Sim reg-vs-imm operand = %d, want -1", got)
	}
}

func TestSimPartialArgMatch(t *testing.T) {
	a := asm.MustParse("mov [esp+18h+var_14], ecx")
	b := asm.MustParse("mov [esp+28h+var_24], ebx")
	// Kinds match; only the esp argument is positionally equal: 2+1.
	if got := Sim(a, b); got != 3 {
		t.Errorf("Sim = %d, want 3", got)
	}
	if got := Sim(a, a); got != 2+4 {
		t.Errorf("Sim identity = %d, want 6", got)
	}
}

// TestAlignPaperFig5 reproduces the alignment of basic blocks 3 and 3'
// (paper Fig. 5): the added instruction mov esi,4 must be reported as
// inserted and everything else aligned.
func TestAlignPaperFig5(t *testing.T) {
	ref := insts(t,
		"mov [esp+18h+var_18], offset aDHELLO",
		"mov ecx, 1",
		"mov [esp+18h+var_14], ecx",
		"call _printf",
	)
	tgt := insts(t,
		"mov [esp+28h+var_28], offset aDHELLO",
		"mov ebx, 1",
		"mov esi, 4",
		"mov [esp+28h+var_24], ebx",
		"call _printf",
	)
	a := Align(ref, tgt)
	if len(a.Pairs) != 4 {
		t.Fatalf("aligned %d pairs, want 4: %+v", len(a.Pairs), a)
	}
	wantPairs := []Pair{{0, 0}, {1, 1}, {2, 3}, {3, 4}}
	for i, p := range a.Pairs {
		if p != wantPairs[i] {
			t.Errorf("pair %d = %v, want %v", i, p, wantPairs[i])
		}
	}
	if len(a.Inserted) != 1 || a.Inserted[0] != 2 {
		t.Errorf("inserted = %v, want [2]", a.Inserted)
	}
	if len(a.Deleted) != 0 {
		t.Errorf("deleted = %v, want []", a.Deleted)
	}
}

func TestScoreEqualsAlignScore(t *testing.T) {
	ref := insts(t, "push ebp", "mov ebp, esp", "sub esp, 18h", "mov eax, 1", "retn")
	tgt := insts(t, "push ebp", "mov ebp, esp", "sub esp, 28h", "xor esi, esi", "mov eax, 1", "retn")
	if Score(ref, tgt) != Align(ref, tgt).Score {
		t.Error("Score and Align disagree")
	}
}

func TestIdentityScore(t *testing.T) {
	seq := insts(t, "push ebp", "mov ebp, esp", "mov eax, [ebp+arg_0]")
	// push ebp: 2+1; mov: 2+2; mov mem: 2+3.
	if got := IdentityScore(seq); got != 3+4+5 {
		t.Errorf("IdentityScore = %d, want 12", got)
	}
	if got := Score(seq, seq); got != IdentityScore(seq) {
		t.Errorf("Score(x,x) = %d, want IdentityScore %d", got, IdentityScore(seq))
	}
}

func TestNorm(t *testing.T) {
	if got := Norm(10, 10, 10, Ratio); got != 1.0 {
		t.Errorf("Ratio identity = %v", got)
	}
	if got := Norm(10, 10, 30, Containment); got != 1.0 {
		t.Errorf("Containment subsumption = %v", got)
	}
	if got := Norm(10, 10, 30, Ratio); got != 0.5 {
		t.Errorf("Ratio = %v, want 0.5", got)
	}
	if got := Norm(0, 0, 0, Ratio); got != 0 {
		t.Errorf("degenerate ratio = %v", got)
	}
	if got := Norm(0, 0, 0, Containment); got != 0 {
		t.Errorf("degenerate containment = %v", got)
	}
	if Ratio.String() != "ratio" || Containment.String() != "containment" {
		t.Error("Method.String broken")
	}
}

// instPool provides realistic material for property tests.
var instPool = []string{
	"push ebp", "mov ebp, esp", "sub esp, 18h", "mov eax, [ebp+arg_0]",
	"mov [ebp+var_4], esi", "xor esi, esi", "cmp esi, 1", "mov ebx, eax",
	"call _printf", "mov ecx, 1", "add eax, ebx", "inc eax", "pop ebp",
	"retn", "lea eax, [ebx+ecx*4]", "test eax, eax", "mov esp, ebp",
	"imul eax, ebx, 4", "push offset aHello", "mov [esp+var_s14], ecx",
}

func randSeq(rng *rand.Rand, n int) []asm.Inst {
	out := make([]asm.Inst, n)
	for i := range out {
		out[i] = asm.MustParse(instPool[rng.Intn(len(instPool))])
	}
	return out
}

// TestQuickAlignProperties checks core invariants of the alignment on
// random sequences: symmetry of the score, the identity bound, score
// consistency with the traceback, and monotonic pair indices.
func TestQuickAlignProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := randSeq(rng, 1+rng.Intn(12))
		tgt := randSeq(rng, 1+rng.Intn(12))
		s := Score(ref, tgt)
		if s != Score(tgt, ref) {
			t.Logf("score not symmetric")
			return false
		}
		ri, ti := IdentityScore(ref), IdentityScore(tgt)
		if s > ri || s > ti {
			t.Logf("score exceeds identity bound")
			return false
		}
		if s < 0 {
			t.Logf("negative score")
			return false
		}
		a := Align(ref, tgt)
		if a.Score != s {
			t.Logf("Align.Score %d != Score %d", a.Score, s)
			return false
		}
		sum := 0
		lastR, lastT := -1, -1
		for _, p := range a.Pairs {
			if p.Ref <= lastR || p.Tgt <= lastT {
				t.Logf("pairs not strictly increasing")
				return false
			}
			lastR, lastT = p.Ref, p.Tgt
			sum += Sim(ref[p.Ref], tgt[p.Tgt])
		}
		if sum != a.Score {
			t.Logf("sum of pair Sims %d != score %d", sum, a.Score)
			return false
		}
		if len(a.Pairs)+len(a.Deleted) != len(ref) || len(a.Pairs)+len(a.Inserted) != len(tgt) {
			t.Logf("partition broken")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestScoreBlocksBoundary(t *testing.T) {
	// Blockwise alignment must not match instructions across block
	// boundaries: here the cross-block match would score higher globally.
	refA := insts(t, "call _printf")
	refB := insts(t, "mov eax, 1")
	tgtA := insts(t, "mov eax, 1")
	tgtB := insts(t, "call _printf")
	global := Score(append(append([]asm.Inst{}, refA...), refB...),
		append(append([]asm.Inst{}, tgtA...), tgtB...))
	blockwise := ScoreBlocks([][]asm.Inst{refA, refB}, [][]asm.Inst{tgtA, tgtB})
	if blockwise >= global {
		t.Errorf("blockwise %d should be < global %d here", blockwise, global)
	}
	if blockwise != 0 {
		t.Errorf("blockwise = %d, want 0", blockwise)
	}
}

func TestScoreBlocksMatchesSum(t *testing.T) {
	a := insts(t, "push ebp", "mov ebp, esp")
	b := insts(t, "mov eax, 1", "retn")
	c := insts(t, "push ebp", "mov ebp, esp", "xor esi, esi")
	d := insts(t, "mov eax, 1", "retn")
	got := ScoreBlocks([][]asm.Inst{a, b}, [][]asm.Inst{c, d})
	want := Score(a, c) + Score(b, d)
	if got != want {
		t.Errorf("ScoreBlocks = %d, want %d", got, want)
	}
}

func TestAlignBlocksOffsets(t *testing.T) {
	a := insts(t, "push ebp", "mov ebp, esp")
	b := insts(t, "mov eax, 1", "retn")
	c := insts(t, "push ebp")
	d := insts(t, "xor esi, esi", "mov eax, 1", "retn")
	al := AlignBlocks([][]asm.Inst{a, b}, [][]asm.Inst{c, d})
	// push ebp matches; mov ebp,esp deleted; xor inserted (index 1 in
	// concatenated target); mov eax,1 and retn match.
	if len(al.Pairs) != 3 {
		t.Fatalf("pairs = %v", al.Pairs)
	}
	if al.Pairs[1] != (Pair{Ref: 2, Tgt: 2}) || al.Pairs[2] != (Pair{Ref: 3, Tgt: 3}) {
		t.Errorf("offset pairs wrong: %v", al.Pairs)
	}
	if len(al.Deleted) != 1 || al.Deleted[0] != 1 {
		t.Errorf("deleted = %v", al.Deleted)
	}
	if len(al.Inserted) != 1 || al.Inserted[0] != 1 {
		t.Errorf("inserted = %v", al.Inserted)
	}
}

func TestMismatchedBlockCountsFallBack(t *testing.T) {
	a := insts(t, "push ebp")
	b := insts(t, "retn")
	got := ScoreBlocks([][]asm.Inst{a, b}, [][]asm.Inst{append(a, b...)})
	want := Score(append(append([]asm.Inst{}, a...), b...), append(append([]asm.Inst{}, a...), b...))
	if got != want {
		t.Errorf("fallback ScoreBlocks = %d, want %d", got, want)
	}
}

// TestTextualDiffStrawMan reproduces the paper's Section 4.3 argument:
// a character-level diff finds substantial "similarity" between
// instructions that share no semantics (their example: rorx edx,esi vs
// inc rdi share r,d,i,e...), while the instruction-level Sim correctly
// rejects the pair.
func TestTextualDiffStrawMan(t *testing.T) {
	a := insts(t, "rorx edx, esi")
	b := insts(t, "inc rdi")
	if got := TextSimilarity(a, b); got < 0.3 {
		t.Errorf("textual diff should be fooled: %v", got)
	}
	if got := Sim(a[0], b[0]); got != -1 {
		t.Errorf("instruction-level Sim must reject: %d", got)
	}
	// And for genuinely similar instructions the instruction-level metric
	// is decisive while text similarity is noisy.
	c := insts(t, "mov [ebp+var_4], esi")
	d := insts(t, "mov [ebp+var_8], edi")
	if got := Sim(c[0], d[0]); got < 3 {
		t.Errorf("related instructions should score >= 3, got %d", got)
	}
}

func TestTextLCSBasics(t *testing.T) {
	for _, tc := range []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"abc", "", 0}, {"abc", "abc", 3},
		{"abcde", "ace", 3}, {"abc", "xyz", 0}, {"ab", "ba", 1},
	} {
		if got := TextLCS(tc.a, tc.b); got != tc.want {
			t.Errorf("TextLCS(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}
