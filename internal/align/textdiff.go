package align

// This file implements the character-level textual diff the paper
// dismisses in Section 4.3 ("a textual diff might decompose an assembly
// instruction and match each decomposed part to a different instruction
// ... such as rorx edx,esi with inc rdi"). It exists as a straw-man
// baseline so the instruction-level alignment's advantage is testable.

import "repro/internal/asm"

// TextLCS returns the length of the longest common subsequence of the two
// strings' bytes.
func TextLCS(a, b string) int {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				cur[j] = prev[j+1] + 1
			} else {
				cur[j] = max(prev[j], cur[j+1])
			}
		}
		prev, cur = cur, prev
		for k := range cur {
			cur[k] = 0
		}
	}
	return prev[0]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TextSimilarity is the normalized character-LCS similarity of two
// instruction sequences rendered as text: 2*LCS / (len(a)+len(b)).
func TextSimilarity(a, b []asm.Inst) float64 {
	sa, sb := renderText(a), renderText(b)
	if len(sa)+len(sb) == 0 {
		return 0
	}
	return float64(2*TextLCS(sa, sb)) / float64(len(sa)+len(sb))
}

func renderText(insts []asm.Inst) string {
	out := ""
	for _, in := range insts {
		out += in.String() + "\n"
	}
	return out
}
