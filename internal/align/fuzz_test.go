package align

import (
	"testing"

	"repro/internal/asm"
)

// vocab is a small instruction alphabet the fuzzer indexes into: enough
// kinds to exercise SameKind boundaries, shared and disjoint operands.
var vocab = []asm.Inst{
	asm.MustParse("mov eax, ebx"),
	asm.MustParse("mov eax, ecx"),
	asm.MustParse("mov edx, ebx"),
	asm.MustParse("mov eax, [ebp+var_4]"),
	asm.MustParse("add eax, 1"),
	asm.MustParse("add eax, 2"),
	asm.MustParse("sub esp, 8"),
	asm.MustParse("cmp eax, ebx"),
	asm.MustParse("test eax, eax"),
	asm.MustParse("push ebp"),
	asm.MustParse("pop ebp"),
	asm.MustParse("imul eax, ebx"),
	asm.MustParse("lea eax, [ebx+4]"),
	asm.MustParse("xor eax, eax"),
	asm.MustParse("ret"),
	asm.MustParse("nop"),
}

// instSeq maps fuzzer bytes to an instruction sequence, capped so the
// O(n·m) DP stays fast under the fuzzing engine.
func instSeq(data []byte) []asm.Inst {
	const maxLen = 64
	if len(data) > maxLen {
		data = data[:maxLen]
	}
	out := make([]asm.Inst, len(data))
	for i, b := range data {
		out[i] = vocab[int(b)%len(vocab)]
	}
	return out
}

// FuzzAlign throws arbitrary instruction sequences at the aligner and
// checks its algebra: symmetry, the identity-score ceiling, agreement
// between the score-only and traceback paths, monotonicity of the pair
// indices, and normalization staying in [0, 1].
func FuzzAlign(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{0, 1, 2, 3})
	f.Add([]byte{0, 4, 8, 12}, []byte{1, 5, 9, 13})
	f.Add([]byte{}, []byte{3, 3, 3})
	f.Add([]byte{14}, []byte{15})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, []byte{0})

	f.Fuzz(func(t *testing.T, ra, ta []byte) {
		ref, tgt := instSeq(ra), instSeq(ta)
		rIdent, tIdent := IdentityScore(ref), IdentityScore(tgt)

		s := Score(ref, tgt)
		if back := Score(tgt, ref); back != s {
			t.Fatalf("asymmetric: Score(ref,tgt)=%d, Score(tgt,ref)=%d", s, back)
		}
		if s < 0 {
			t.Fatalf("negative score %d", s)
		}
		if min := minIdent(rIdent, tIdent); s > min {
			t.Fatalf("score %d exceeds identity ceiling %d", s, min)
		}

		al := Align(ref, tgt)
		if al.Score != s {
			t.Fatalf("Align.Score=%d but Score=%d", al.Score, s)
		}
		sum, prevR, prevT := 0, -1, -1
		for _, p := range al.Pairs {
			if p.Ref <= prevR || p.Tgt <= prevT || p.Ref >= len(ref) || p.Tgt >= len(tgt) {
				t.Fatalf("bad pair stream %v", al.Pairs)
			}
			prevR, prevT = p.Ref, p.Tgt
			sum += Sim(ref[p.Ref], tgt[p.Tgt])
		}
		if sum != al.Score {
			t.Fatalf("pair sims total %d, Align.Score=%d", sum, al.Score)
		}
		if len(al.Pairs)+len(al.Deleted) != len(ref) || len(al.Pairs)+len(al.Inserted) != len(tgt) {
			t.Fatalf("alignment does not partition: %d pairs, %d deleted, %d inserted for %d/%d insts",
				len(al.Pairs), len(al.Deleted), len(al.Inserted), len(ref), len(tgt))
		}

		for _, m := range []Method{Ratio, Containment} {
			if n := Norm(s, rIdent, tIdent, m); n < 0 || n > 1 {
				t.Fatalf("%v normalization %v outside [0,1]", m, n)
			}
		}
	})
}

func minIdent(a, b int) int {
	if a < b {
		return a
	}
	return b
}
