// Package align implements tracelet alignment and scoring (paper
// Section 4.3, Algorithm 3): a longest-common-subsequence variation over
// whole assembly instructions, using the instruction similarity measure
//
//	Sim(c, c') = 2 + #{i : args(c)[i] = args(c')[i]}  if SameKind(c, c')
//	           = -1                                    otherwise
//
// Skipping an instruction (insertion or deletion) costs nothing, so the
// score is the sum of Sim over the chosen aligned pairs; a negative-Sim
// pair is never chosen. The package also provides the ratio and
// containment normalizations of the tracelet similarity score.
package align

import "repro/internal/asm"

// Sim is the instruction similarity measure of paper Section 4.3.
func Sim(c, cp asm.Inst) int {
	if !asm.SameKind(c, cp) {
		return -1
	}
	a, b := c.Args(), cp.Args()
	score := 2
	for i := range a {
		if i < len(b) && a[i] == b[i] {
			score++
		}
	}
	return score
}

// IdentityScore is the similarity score of a sequence with itself: the sum
// of Sim(c, c) = 2 + len(args(c)) over its instructions.
func IdentityScore(insts []asm.Inst) int {
	s := 0
	for _, in := range insts {
		s += 2 + len(in.Args())
	}
	return s
}

// Pair is one aligned instruction pair: indices into the reference and
// target sequences.
type Pair struct {
	Ref, Tgt int
}

// Alignment is the full output of the edit-distance computation: the
// score, the aligned pairs, and the unmatched (deleted from reference /
// inserted into target) instruction indices.
type Alignment struct {
	Score    int
	Pairs    []Pair
	Deleted  []int // reference instructions with no counterpart
	Inserted []int // target instructions with no counterpart
}

// Score computes only the similarity score between a reference and target
// instruction sequence (CalcScore of paper Algorithm 3).
func Score(ref, tgt []asm.Inst) int {
	n, m := len(ref), len(tgt)
	if n == 0 || m == 0 {
		return 0
	}
	// Single rolling row: A[j] = best score aligning ref[i:] with tgt[j:].
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			best := prev[j] // delete ref[i]
			if v := cur[j+1]; v > best {
				best = v // insert tgt[j]
			}
			if v := Sim(ref[i], tgt[j]) + prev[j+1]; v > best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
		cur[m] = 0
	}
	return prev[0]
}

// Align computes the full alignment between a reference and a target
// instruction sequence, with traceback (AlignTracelets of paper
// Algorithm 1; the paper notes CalcScore and AlignTracelets perform the
// same computation).
func Align(ref, tgt []asm.Inst) Alignment {
	n, m := len(ref), len(tgt)
	a := make([][]int, n+1)
	for i := range a {
		a[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			best := a[i+1][j]
			if v := a[i][j+1]; v > best {
				best = v
			}
			if v := Sim(ref[i], tgt[j]) + a[i+1][j+1]; v > best {
				best = v
			}
			a[i][j] = best
		}
	}
	out := Alignment{Score: a[0][0]}
	i, j := 0, 0
	for i < n && j < m {
		s := Sim(ref[i], tgt[j])
		switch {
		case s >= 0 && a[i][j] == s+a[i+1][j+1]:
			out.Pairs = append(out.Pairs, Pair{Ref: i, Tgt: j})
			i++
			j++
		case a[i][j] == a[i+1][j]:
			out.Deleted = append(out.Deleted, i)
			i++
		default:
			out.Inserted = append(out.Inserted, j)
			j++
		}
	}
	for ; i < n; i++ {
		out.Deleted = append(out.Deleted, i)
	}
	for ; j < m; j++ {
		out.Inserted = append(out.Inserted, j)
	}
	return out
}

// Method selects a normalization for tracelet similarity scores (paper
// Section 4.3).
type Method int

const (
	// Ratio considers the proportional size of unmatched instructions in
	// both tracelets: 2S / (RIdent + TIdent).
	Ratio Method = iota
	// Containment requires one tracelet to be contained in the other:
	// S / min(RIdent, TIdent).
	Containment
)

// String names the method.
func (m Method) String() string {
	if m == Containment {
		return "containment"
	}
	return "ratio"
}

// Norm normalizes a similarity score using the identity scores of the
// reference and target, returning a value in [0, 1] for non-degenerate
// inputs.
func Norm(s, rIdent, tIdent int, m Method) float64 {
	switch m {
	case Containment:
		min := rIdent
		if tIdent < min {
			min = tIdent
		}
		if min <= 0 {
			return 0
		}
		return float64(s) / float64(min)
	default:
		if rIdent+tIdent <= 0 {
			return 0
		}
		return float64(2*s) / float64(rIdent+tIdent)
	}
}
