// Package align implements tracelet alignment and scoring (paper
// Section 4.3, Algorithm 3): a longest-common-subsequence variation over
// whole assembly instructions, using the instruction similarity measure
//
//	Sim(c, c') = 2 + #{i : args(c)[i] = args(c')[i]}  if SameKind(c, c')
//	           = -1                                    otherwise
//
// Skipping an instruction (insertion or deletion) costs nothing, so the
// score is the sum of Sim over the chosen aligned pairs; a negative-Sim
// pair is never chosen. The package also provides the ratio and
// containment normalizations of the tracelet similarity score.
package align

import (
	"sync"

	"repro/internal/asm"
)

// Sim is the instruction similarity measure of paper Section 4.3.
// Same-kind instructions have pairwise same-shape operands, so the
// positional argument comparison walks both operand lists in place —
// no flattened arg slices are materialized on this path (it runs once
// per DP cell).
func Sim(c, cp asm.Inst) int {
	if !asm.SameKind(c, cp) {
		return -1
	}
	score := 2
	for i := range c.Ops {
		o, p := &c.Ops[i], &cp.Ops[i]
		if !o.IsMem() {
			if o.Arg == p.Arg {
				score++
			}
			continue
		}
		for j := range o.Mem {
			if o.Mem[j].Arg == p.Mem[j].Arg {
				score++
			}
		}
	}
	return score
}

// IdentityScore is the similarity score of a sequence with itself: the sum
// of Sim(c, c) = 2 + len(args(c)) over its instructions.
func IdentityScore(insts []asm.Inst) int {
	s := 0
	for _, in := range insts {
		s += 2 + in.NumArgs()
	}
	return s
}

// Pair is one aligned instruction pair: indices into the reference and
// target sequences.
type Pair struct {
	Ref, Tgt int
}

// Alignment is the full output of the edit-distance computation: the
// score, the aligned pairs, and the unmatched (deleted from reference /
// inserted into target) instruction indices.
type Alignment struct {
	Score    int
	Pairs    []Pair
	Deleted  []int // reference instructions with no counterpart
	Inserted []int // target instructions with no counterpart
}

// dpPool recycles DP buffers across Score/Align calls: the matcher runs
// one DP per distinct block pair on the search hot path, and per-call
// row/matrix allocations were a measurable share of its garbage.
var dpPool = sync.Pool{New: func() any { return new([]int) }}

// getInts returns a zeroed length-n buffer from the pool.
func getInts(n int) *[]int {
	p := dpPool.Get().(*[]int)
	if cap(*p) < n {
		*p = make([]int, n)
	} else {
		*p = (*p)[:n]
		clear(*p)
	}
	return p
}

// Score computes only the similarity score between a reference and target
// instruction sequence (CalcScore of paper Algorithm 3).
func Score(ref, tgt []asm.Inst) int {
	n, m := len(ref), len(tgt)
	if n == 0 || m == 0 {
		return 0
	}
	// Two rolling rows: A[j] = best score aligning ref[i:] with tgt[j:].
	bp := getInts(2 * (m + 1))
	prev, cur := (*bp)[:m+1], (*bp)[m+1:]
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			best := prev[j] // delete ref[i]
			if v := cur[j+1]; v > best {
				best = v // insert tgt[j]
			}
			if v := Sim(ref[i], tgt[j]) + prev[j+1]; v > best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
		cur[m] = 0
	}
	s := prev[0]
	dpPool.Put(bp)
	return s
}

// Align computes the full alignment between a reference and a target
// instruction sequence, with traceback (AlignTracelets of paper
// Algorithm 1; the paper notes CalcScore and AlignTracelets perform the
// same computation).
func Align(ref, tgt []asm.Inst) Alignment {
	n, m := len(ref), len(tgt)
	// Flat (n+1)×(m+1) matrix from the pool; a[i][j] lives at a[i*w+j].
	w := m + 1
	bp := getInts((n + 1) * w)
	a := *bp
	for i := n - 1; i >= 0; i-- {
		row, below := a[i*w:(i+1)*w], a[(i+1)*w:(i+2)*w]
		for j := m - 1; j >= 0; j-- {
			best := below[j]
			if v := row[j+1]; v > best {
				best = v
			}
			if v := Sim(ref[i], tgt[j]) + below[j+1]; v > best {
				best = v
			}
			row[j] = best
		}
	}
	// The output sizes are bounded up front: pairs+deleted partition the
	// reference, pairs+inserted the target.
	minNM := n
	if m < minNM {
		minNM = m
	}
	out := Alignment{Score: a[0]}
	if minNM > 0 {
		out.Pairs = make([]Pair, 0, minNM)
	}
	if n > 0 {
		out.Deleted = make([]int, 0, n)
	}
	if m > 0 {
		out.Inserted = make([]int, 0, m)
	}
	i, j := 0, 0
	for i < n && j < m {
		s := Sim(ref[i], tgt[j])
		switch {
		case s >= 0 && a[i*w+j] == s+a[(i+1)*w+j+1]:
			out.Pairs = append(out.Pairs, Pair{Ref: i, Tgt: j})
			i++
			j++
		case a[i*w+j] == a[(i+1)*w+j]:
			out.Deleted = append(out.Deleted, i)
			i++
		default:
			out.Inserted = append(out.Inserted, j)
			j++
		}
	}
	for ; i < n; i++ {
		out.Deleted = append(out.Deleted, i)
	}
	for ; j < m; j++ {
		out.Inserted = append(out.Inserted, j)
	}
	dpPool.Put(bp)
	return out
}

// Method selects a normalization for tracelet similarity scores (paper
// Section 4.3).
type Method int

const (
	// Ratio considers the proportional size of unmatched instructions in
	// both tracelets: 2S / (RIdent + TIdent).
	Ratio Method = iota
	// Containment requires one tracelet to be contained in the other:
	// S / min(RIdent, TIdent).
	Containment
)

// String names the method.
func (m Method) String() string {
	if m == Containment {
		return "containment"
	}
	return "ratio"
}

// Norm normalizes a similarity score using the identity scores of the
// reference and target, returning a value in [0, 1] for non-degenerate
// inputs.
func Norm(s, rIdent, tIdent int, m Method) float64 {
	switch m {
	case Containment:
		min := rIdent
		if tIdent < min {
			min = tIdent
		}
		if min <= 0 {
			return 0
		}
		return float64(s) / float64(min)
	default:
		if rIdent+tIdent <= 0 {
			return 0
		}
		return float64(2*s) / float64(rIdent+tIdent)
	}
}
