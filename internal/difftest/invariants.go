package difftest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/align"
	"repro/internal/asm"
	"repro/internal/bin"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/minhash"
	"repro/internal/prep"
	"repro/internal/rewrite"
	"repro/internal/server"
	"repro/internal/x86"
)

// checker accumulates invariant evaluations over one program. Every call
// to fail records a divergence; ran counts evaluations whether they pass
// or not, so Report.InvariantChecks reflects coverage, not luck.
type checker struct {
	prog   int
	seed   int64
	src    string
	checks int
	divs   []Divergence
}

func (c *checker) ran() { c.checks++ }

func (c *checker) fail(name, variant, format string, args ...any) {
	c.divs = append(c.divs, Divergence{
		Check: "invariant/" + name, Program: c.prog, Seed: c.seed,
		Variant: variant, Detail: fmt.Sprintf(format, args...), Source: c.src,
	})
}

// checkInvariants evaluates every metamorphic invariant over the built
// variants of one program.
func (cfg *Config) checkInvariants(prog int, seed int64, src string, built []variant, images [][]byte) (int, []Divergence) {
	c := &checker{prog: prog, seed: seed, src: src}

	for vi, img := range images {
		c.roundTrip(built[vi].String(), img)
	}

	// Alignment and rewrite invariants want structurally different builds
	// of the same semantics: the first (O0) and last (highest-seeded O2)
	// variants are the farthest apart in the matrix.
	if len(images) >= 2 {
		first := liftNamed(images[0], FuncName)
		last := liftNamed(images[len(images)-1], FuncName)
		if first != nil && last != nil {
			da := core.Decompose(first, 3)
			db := core.Decompose(last, 3)
			c.alignInvariants(built[0].String(), da, db)
			c.rewriteInvariants(built[len(built)-1].String(), da, db)
		}
	}

	c.searchParity(built, images)
	return c.checks, c.divs
}

// roundTrip checks encode→decode→re-encode byte identity over every
// function of one built image: whatever the decoder understood, the
// encoder must reproduce bit-for-bit. Control-flow instructions are
// exempt — the decoder resolves their relative displacements to absolute
// targets, which only AssembleFunc (with labels) can re-encode.
func (c *checker) roundTrip(variant string, img []byte) {
	f, err := bin.Read(img)
	if err != nil {
		c.ran()
		c.fail("roundtrip", variant, "reading built image: %v", err)
		return
	}
	fns, err := f.Functions()
	if err != nil {
		c.ran()
		c.fail("roundtrip", variant, "finding functions: %v", err)
		return
	}
	for _, fn := range fns {
		decoded, err := x86.DecodeAll(fn.Code, fn.Addr)
		if err != nil {
			c.ran()
			c.fail("roundtrip", variant, "%s: decoding: %v", fn.Name, err)
			continue
		}
		for _, d := range decoded {
			if d.Inst.IsControlFlow() {
				continue
			}
			c.ran()
			enc, fixups, err := x86.EncodeInst(d.Inst)
			if err != nil {
				c.fail("roundtrip", variant, "%s at %#x: %q decoded but will not re-encode: %v",
					fn.Name, d.Addr, d.Inst, err)
				continue
			}
			if len(fixups) != 0 {
				c.fail("roundtrip", variant, "%s at %#x: %q re-encoded with %d fixups from concrete bytes",
					fn.Name, d.Addr, d.Inst, len(fixups))
				continue
			}
			orig := fn.Code[d.Addr-fn.Addr : d.Addr-fn.Addr+uint32(d.Len)]
			if !bytes.Equal(enc, orig) {
				c.fail("roundtrip", variant, "%s at %#x: %q re-encodes to % x, was % x",
					fn.Name, d.Addr, d.Inst, enc, orig)
			}
		}
	}
}

// alignInvariants checks the algebra of the tracelet aligner on real
// tracelets from two builds: score symmetry, the self-similarity
// ceiling (nothing aligns better with a tracelet than itself, and the
// self-score normalizes to exactly 1), and traceback consistency (the
// alignment's claimed score equals both the DP score and the sum of
// Sim over its chosen pairs).
func (c *checker) alignInvariants(variant string, da, db *core.Decomposed) {
	pairs := traceletPairs(da, db, 4)
	for _, p := range pairs {
		ref, tgt := p[0], p[1]
		rIdent, tIdent := align.IdentityScore(ref), align.IdentityScore(tgt)

		c.ran()
		fwd, bwd := align.Score(ref, tgt), align.Score(tgt, ref)
		if fwd != bwd {
			c.fail("align/symmetry", variant, "Score(ref,tgt)=%d but Score(tgt,ref)=%d", fwd, bwd)
		}

		c.ran()
		if min := minInt(rIdent, tIdent); fwd > min {
			c.fail("align/ceiling", variant, "cross score %d exceeds min identity %d", fwd, min)
		}

		c.ran()
		if self := align.Score(ref, ref); self != rIdent {
			c.fail("align/self", variant, "self score %d != identity score %d", self, rIdent)
		} else if rIdent > 0 {
			for _, m := range []align.Method{align.Ratio, align.Containment} {
				if n := align.Norm(self, rIdent, rIdent, m); n != 1.0 {
					c.fail("align/self", variant, "%v-normalized self score = %v, want exactly 1", m, n)
				}
			}
		}

		c.ran()
		al := align.Align(ref, tgt)
		if al.Score != fwd {
			c.fail("align/traceback", variant, "Align score %d != Score %d", al.Score, fwd)
		}
		sum, prevR, prevT := 0, -1, -1
		for _, pr := range al.Pairs {
			if pr.Ref <= prevR || pr.Tgt <= prevT {
				c.fail("align/traceback", variant, "pairs not strictly increasing: %v", al.Pairs)
				break
			}
			prevR, prevT = pr.Ref, pr.Tgt
			sum += align.Sim(ref[pr.Ref], tgt[pr.Tgt])
		}
		if sum != al.Score {
			c.fail("align/traceback", variant, "sum of pair sims %d != score %d", sum, al.Score)
		}
		if len(al.Pairs)+len(al.Deleted) != len(ref) || len(al.Pairs)+len(al.Inserted) != len(tgt) {
			c.fail("align/traceback", variant, "pairs+deleted+inserted do not partition the sequences")
		}
	}
}

// rewriteInvariants checks the CSP rewrite engine on tracelet pairs from
// two builds: the rewrite must preserve the target's shape (same blocks,
// same instruction kinds), must not mutate its input, must never lower
// the alignment score of the pair it was asked to improve, and the full
// matcher with rewriting enabled must never score a function pair below
// the same matcher with rewriting disabled.
func (c *checker) rewriteInvariants(variant string, da, db *core.Decomposed) {
	n := minInt(minInt(len(da.Tracelets), len(db.Tracelets)), 3)
	for i := 0; i < n; i++ {
		rt, tt := da.Tracelets[i], db.Tracelets[i]
		refInsts, tgtInsts := rt.Insts(), tt.Insts()
		if len(refInsts) == 0 || len(tgtInsts) == 0 {
			continue
		}
		before := traceletString(tt.Blocks)
		pre := align.Score(refInsts, tgtInsts)
		al := align.Align(refInsts, tgtInsts)
		res := rewrite.Rewrite(rt.Blocks, tt.Blocks, al)

		c.ran()
		if after := traceletString(tt.Blocks); after != before {
			c.fail("rewrite/immutable", variant, "Rewrite mutated its input tracelet")
		}

		c.ran()
		if len(res.Blocks) != len(tt.Blocks) {
			c.fail("rewrite/shape", variant, "rewrite changed block count %d -> %d",
				len(tt.Blocks), len(res.Blocks))
		} else {
		shape:
			for bi, blk := range res.Blocks {
				if len(blk) != len(tt.Blocks[bi]) {
					c.fail("rewrite/shape", variant, "block %d changed length %d -> %d",
						bi, len(tt.Blocks[bi]), len(blk))
					break
				}
				for ii, in := range blk {
					if in.Mnemonic != tt.Blocks[bi][ii].Mnemonic {
						c.fail("rewrite/shape", variant, "block %d inst %d changed kind %q -> %q",
							bi, ii, tt.Blocks[bi][ii].Mnemonic, in.Mnemonic)
						break shape
					}
				}
			}
		}

		c.ran()
		post := align.Score(refInsts, flattenBlocks(res.Blocks))
		if post < pre {
			c.fail("rewrite/monotone", variant,
				"rewriting lowered the alignment score %d -> %d (vars=%d conflicts=%d)",
				pre, post, res.NumVars, res.Conflicts)
		}
	}

	// Engine-level monotonicity: rewriting can only add matched tracelets.
	c.ran()
	plain := core.DefaultOptions()
	plain.UseRewrite = false
	with := core.DefaultOptions()
	rp := core.NewMatcher(plain).Compare(da, db)
	rw := core.NewMatcher(with).Compare(da, db)
	if rw.SimilarityScore < rp.SimilarityScore || rw.Matched() < rp.Matched() {
		c.fail("rewrite/monotone", variant,
			"enabling rewrite lowered the verdict: score %v -> %v, matched %d -> %d",
			rp.SimilarityScore, rw.SimilarityScore, rp.Matched(), rw.Matched())
	}
	c.ran()
	if rw.MatchedDirect != rp.MatchedDirect {
		c.fail("rewrite/direct", variant,
			"enabling rewrite changed direct matches %d -> %d", rp.MatchedDirect, rw.MatchedDirect)
	}
}

// searchParity indexes every variant and checks that the three search
// paths — offline DB scan, sharded snapshot, and the HTTP service — rank
// the same query identically, hit for hit.
func (c *checker) searchParity(built []variant, images [][]byte) {
	const limit = 100
	opts := core.DefaultOptions()
	db := index.New()
	for vi, img := range images {
		if err := db.AddImage(fmt.Sprintf("v%d-%s", vi, built[vi]), img, nil); err != nil {
			c.ran()
			c.fail("parity", built[vi].String(), "indexing: %v", err)
			return
		}
	}
	query := liftNamed(images[0], FuncName)
	if query == nil {
		c.ran()
		c.fail("parity", built[0].String(), "query function %s not liftable from first variant", FuncName)
		return
	}

	offline := index.TopK(db.Search(query, opts), limit, 0)

	// Cancellation plumbing must be pure overhead: a Background context
	// threaded through the context-aware entry point yields the same hits,
	// bit for bit, as the legacy call it wraps.
	c.ran()
	ctxHits, err := db.SearchCtx(context.Background(), query, opts, index.PrefilterOptions{})
	if err != nil {
		c.fail("parity", "ctx", "SearchCtx(Background) errored: %v", err)
	} else if d := diffOfflineHits(offline, index.TopK(ctxHits, limit, 0)); d != "" {
		c.fail("parity", "ctx", "SearchCtx(Background) vs Search: %s", d)
	}

	// The score-bound pruner must be lossless: every Result field of every
	// hit identical between pruned and exhaustive search.
	c.ran()
	exhaustive := opts
	exhaustive.Prune = false
	exHits := index.TopK(db.Search(query, exhaustive), limit, 0)
	if len(exHits) != len(offline) {
		c.fail("parity", "prune", "pruned search returned %d hits, exhaustive %d",
			len(offline), len(exHits))
	} else {
		for i := range offline {
			// PairsPruned is work accounting (nonzero only under pruning),
			// not part of the search output the parity contract covers.
			pr, ex := offline[i].Result, exHits[i].Result
			pr.PairsPruned, ex.PairsPruned = 0, 0
			if offline[i].Entry != exHits[i].Entry || pr != ex {
				c.fail("parity", "prune", "hit %d: pruned %s %+v != exhaustive %s %+v",
					i, offline[i].Entry.Name, pr, exHits[i].Entry.Name, ex)
				break
			}
		}
	}

	// The feature prefilter is lossy in coverage but must be exact in
	// scoring: each prefiltered hit carries the exhaustive scan's Result
	// for the same entry.
	c.ran()
	byEntry := make(map[*index.Entry]core.Result, len(offline))
	for _, h := range offline {
		byEntry[h.Entry] = h.Result
	}
	pre := db.SearchWith(query, opts, index.PrefilterOptions{Candidates: 5})
	if len(pre) == 0 || len(pre) > 5 {
		c.fail("parity", "prefilter", "cap 5 returned %d candidates", len(pre))
	}
	for _, h := range pre {
		if want, ok := byEntry[h.Entry]; !ok || h.Result != want {
			c.fail("parity", "prefilter", "candidate %s/%s result drifted: %+v vs %+v",
				h.Entry.Exe, h.Entry.Name, h.Result, want)
			break
		}
	}

	// The banded MinHash prefilter is lossy in coverage but bounded the
	// same way: every candidate it surfaces must carry the exhaustive
	// scan's Result for that entry, the query's own entry must survive
	// banding (it collides with itself in every band), and the whole path
	// must be deterministic — run to run in memory, and byte for byte
	// through the v3 LSHB section.
	c.ran()
	satur := index.PrefilterOptions{Candidates: db.Len() + 1, Mode: index.ModeLSH}
	lshHits := db.SearchWith(query, opts, satur)
	if len(lshHits) == 0 {
		c.fail("lsh/self", "mem", "saturating lsh search returned no candidates")
	}
	self := false
	for _, h := range lshHits {
		if want, ok := byEntry[h.Entry]; !ok || h.Result != want {
			c.fail("lsh/parity", "mem", "lsh candidate %s/%s result drifted from exhaustive: %+v vs %+v",
				h.Entry.Exe, h.Entry.Name, h.Result, want)
			break
		}
		if h.Entry.Name == query.Name && h.Result.IsMatch {
			self = true
		}
	}
	if len(lshHits) > 0 && !self {
		c.fail("lsh/self", "mem", "query's own entry %s missing from saturating lsh candidates", query.Name)
	}
	c.ran()
	if d := diffOfflineHits(lshHits, db.SearchWith(query, opts, satur)); d != "" {
		c.fail("lsh/determinism", "mem", "two identical lsh searches diverged: %s", d)
	}
	// A tight cap must stay a subset with unchanged scores.
	c.ran()
	for _, h := range db.SearchWith(query, opts, index.PrefilterOptions{Candidates: 5, Mode: index.ModeLSH}) {
		if want, ok := byEntry[h.Entry]; !ok || h.Result != want {
			c.fail("lsh/subset", "mem", "capped lsh candidate %s/%s not in exhaustive results or rescored",
				h.Entry.Exe, h.Entry.Name)
			break
		}
	}
	c.ran()
	var lsh1, lsh2 bytes.Buffer
	if err := db.SaveV3LSH(&lsh1, minhash.Default); err != nil {
		c.fail("lsh/v3", "v3", "SaveV3LSH: %v", err)
	} else if err := db.SaveV3LSH(&lsh2, minhash.Default); err != nil {
		c.fail("lsh/v3", "v3", "SaveV3LSH (second run): %v", err)
	} else if !bytes.Equal(lsh1.Bytes(), lsh2.Bytes()) {
		c.fail("lsh/determinism", "v3", "two SaveV3LSH runs of the same index differ byte-for-byte")
	} else if lshdb, err := index.Load(bytes.NewReader(lsh1.Bytes())); err != nil {
		c.fail("lsh/v3", "v3", "loading lsh-signed index: %v", err)
	} else {
		if !lshdb.Store().HasLSH() {
			c.fail("lsh/v3", "v3", "SaveV3LSH output carries no LSHB section")
		}
		c.ran()
		if d := diffOfflineHits(lshHits, lshdb.SearchWith(query, opts, satur)); d != "" {
			c.fail("lsh/determinism", "v3", "persisted signatures rank differently than in-memory ones: %s", d)
		}
	}

	c.ran()
	snap := index.BuildSnapshot(db, []int{opts.K}, 2)
	snapHits, err := snap.Search(query, opts)
	if err != nil {
		c.fail("parity", "snapshot", "snapshot search: %v", err)
		return
	}
	snapTop := index.TopK(snapHits, limit, 0)
	if d := diffOfflineHits(offline, snapTop); d != "" {
		c.fail("parity", "snapshot", "snapshot vs offline: %s", d)
	}

	// Same rule for the sharded snapshot path.
	c.ran()
	snapCtxHits, err := snap.SearchCtx(context.Background(), query, opts)
	if err != nil {
		c.fail("parity", "snapshot-ctx", "SearchCtx(Background) errored: %v", err)
	} else if d := diffOfflineHits(snapTop, index.TopK(snapCtxHits, limit, 0)); d != "" {
		c.fail("parity", "snapshot-ctx", "snapshot SearchCtx vs Search: %s", d)
	}

	// The v3 columnar loader is a different decoder over a different
	// on-disk layout; searches over a converted index must be
	// bit-identical to the in-memory database's, on both the scan and the
	// lazy snapshot path.
	c.ran()
	var v3buf bytes.Buffer
	if err := db.SaveV3(&v3buf); err != nil {
		c.fail("parity", "v3", "SaveV3: %v", err)
	} else if v3db, err := index.Load(bytes.NewReader(v3buf.Bytes())); err != nil {
		c.fail("parity", "v3", "loading converted index: %v", err)
	} else {
		if v3db.Info().Version != 3 {
			c.fail("parity", "v3", "converted index loaded as v%d", v3db.Info().Version)
		}
		if d := diffOfflineHits(offline, index.TopK(v3db.Search(query, opts), limit, 0)); d != "" {
			c.fail("parity", "v3", "v3 loader vs in-memory: %s", d)
		}
		c.ran()
		v3snap := index.BuildSnapshot(v3db, []int{opts.K}, 2)
		v3SnapHits, err := v3snap.Search(query, opts)
		if err != nil {
			c.fail("parity", "v3-snapshot", "snapshot search over v3: %v", err)
		} else if d := diffOfflineHits(snapTop, index.TopK(v3SnapHits, limit, 0)); d != "" {
			c.fail("parity", "v3-snapshot", "lazy v3 snapshot vs offline: %s", d)
		}
	}

	// The fleet merge contract: hash-sharding the corpus into disjoint v3
	// slices, searching each shard independently, and re-ranking the
	// concatenated partials through the same top-K selection must
	// reproduce the union search bit for bit. This is the invariant the
	// serving coordinator's scatter-gather relies on.
	c.ran()
	const nShards = 2
	var merged []index.Hit
	shardTotal := 0
	for sh := 0; sh < nShards; sh++ {
		var buf bytes.Buffer
		if err := db.SaveV3Shard(&buf, sh, nShards); err != nil {
			c.fail("parity", "fleet", "SaveV3Shard(%d/%d): %v", sh, nShards, err)
			return
		}
		sdb, err := index.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			c.fail("parity", "fleet", "loading shard %d: %v", sh, err)
			return
		}
		shardTotal += sdb.Len()
		merged = append(merged, index.TopK(sdb.Search(query, opts), limit, 0)...)
	}
	if shardTotal != db.Len() {
		c.fail("parity", "fleet", "shards hold %d functions, union index %d", shardTotal, db.Len())
	}
	if d := diffOfflineHits(offline, index.TopK(merged, limit, 0)); d != "" {
		c.fail("parity", "fleet", "sharded merge vs union search: %s", d)
	}

	c.ran()
	srv := server.NewFromDB(db, server.Config{Opts: opts})
	req := &server.SearchRequest{Function: FuncName, K: opts.K, Limit: limit}
	req.SetImage(images[0])
	resp, err := postSearch(srv, req)
	if err != nil {
		c.fail("parity", "server", "%v", err)
		return
	}
	if d := diffServerHits(offline, resp.Hits); d != "" {
		c.fail("parity", "server", "served vs offline: %s", d)
	}
	if resp.Candidates != len(offline) && resp.Candidates != db.Len() {
		c.fail("parity", "server", "served %d candidates, index holds %d", resp.Candidates, db.Len())
	}
}

// postSearch drives the server's real HTTP handler in memory.
func postSearch(srv *server.Server, req *server.SearchRequest) (*server.SearchResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	w := &memResponse{header: make(http.Header), status: http.StatusOK}
	srv.Handler().ServeHTTP(w, hr)
	if w.status != http.StatusOK {
		return nil, fmt.Errorf("search returned %d: %s", w.status, bytes.TrimSpace(w.body.Bytes()))
	}
	var resp server.SearchResponse
	if err := json.Unmarshal(w.body.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	return &resp, nil
}

// memResponse is a minimal in-memory http.ResponseWriter.
type memResponse struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func (m *memResponse) Header() http.Header         { return m.header }
func (m *memResponse) Write(p []byte) (int, error) { return m.body.Write(p) }
func (m *memResponse) WriteHeader(status int)      { m.status = status }

func diffOfflineHits(want, got []index.Hit) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d hits, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Entry.Exe != g.Entry.Exe || w.Entry.Name != g.Entry.Name ||
			w.Result.SimilarityScore != g.Result.SimilarityScore ||
			w.Result.IsMatch != g.Result.IsMatch || w.Result.Matched() != g.Result.Matched() {
			return fmt.Sprintf("hit %d: got %s/%s score %v match %v, want %s/%s score %v match %v",
				i, g.Entry.Exe, g.Entry.Name, g.Result.SimilarityScore, g.Result.IsMatch,
				w.Entry.Exe, w.Entry.Name, w.Result.SimilarityScore, w.Result.IsMatch)
		}
	}
	return ""
}

func diffServerHits(want []index.Hit, got []server.Hit) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d hits, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Entry.Exe != g.Exe || w.Entry.Name != g.Name ||
			w.Result.SimilarityScore != g.Score || w.Result.IsMatch != g.IsMatch ||
			w.Result.Matched() != g.Matched {
			return fmt.Sprintf("hit %d: got %s/%s score %v match %v, want %s/%s score %v match %v",
				i, g.Exe, g.Name, g.Score, g.IsMatch,
				w.Entry.Exe, w.Entry.Name, w.Result.SimilarityScore, w.Result.IsMatch)
		}
	}
	return ""
}

// liftNamed lifts an image and returns its function named name, or nil.
func liftNamed(img []byte, name string) *prep.Function {
	fns, err := prep.LiftImage(img)
	if err != nil {
		return nil
	}
	for _, fn := range fns {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// traceletPairs yields up to n (ref, tgt) instruction-sequence pairs
// drawn positionally from two decompositions, padding with a self-pair
// so degenerate functions still exercise the self invariants.
func traceletPairs(da, db *core.Decomposed, n int) [][2][]asm.Inst {
	var out [][2][]asm.Inst
	for i := 0; i < len(da.Tracelets) && i < len(db.Tracelets) && len(out) < n; i++ {
		out = append(out, [2][]asm.Inst{da.Tracelets[i].Insts(), db.Tracelets[i].Insts()})
	}
	if len(da.Tracelets) > 0 {
		in := da.Tracelets[0].Insts()
		out = append(out, [2][]asm.Inst{in, in})
	}
	return out
}

func traceletString(blocks [][]asm.Inst) string {
	var b bytes.Buffer
	for _, blk := range blocks {
		for _, in := range blk {
			b.WriteString(in.String())
			b.WriteByte('\n')
		}
		b.WriteByte(';')
	}
	return b.String()
}

func flattenBlocks(blocks [][]asm.Inst) []asm.Inst {
	var out []asm.Inst
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
