// Package difftest is the correctness harness of the whole pipeline: a
// differential-testing engine that pits the compiler → assembler →
// linker → loader → decoder → emulator stack against itself, plus the
// metamorphic invariants of the search stack (alignment, rewriting,
// indexing, serving) evaluated over the same generated programs.
//
// The oracle is the one Trex-style semantics-based approaches use for
// binary similarity, repurposed for testing: every build of the same
// source — any optimization level, any context-knob seed — must compute
// the same return value and make the same external calls on the same
// inputs. A silent bug anywhere in the chain (a miscompiled loop, a
// misencoded ModRM byte, a decoder that drops a displacement) surfaces
// as a divergence between two variants, with a seed that reproduces it
// byte-for-byte.
//
// Everything derives deterministically from Config.Seed: program
// sources, context knobs and input vectors. `tracy fuzz -seed S` twice
// is the same run twice.
package difftest

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"repro/internal/corpus"
	"repro/internal/emu"
	"repro/internal/telemetry"
	"repro/internal/tinyc"
)

// FuncName is the name of the generated function in every program.
const FuncName = "fuzzfn"

// Config sizes and seeds a differential run. The zero value of any
// field picks the default noted on it.
type Config struct {
	Programs int   // random programs to generate (default 25)
	Seed     int64 // master seed; the whole run derives from it (default 1)
	Stmts    int   // statement budget per program (default 25)
	Inputs   int   // input vectors emulated per program (default 3)
	ExtraO2  int   // O2 context variants beyond the base O0/O1/O2/Os set (default 2)
	MaxSteps int   // emulator step budget per run (default 2,000,000)
	Workers  int   // parallel program pipelines (0: GOMAXPROCS, <0: 1)

	// SkipInvariants disables the metamorphic checks, leaving only the
	// compiler/emulator oracle.
	SkipInvariants bool

	// MaxDivergences stops the run once this many divergences have been
	// collected (default 16; the first one is almost always the story).
	MaxDivergences int

	// Tel, when non-nil, receives per-run statistics: diff_programs,
	// diff_builds, diff_executions, diff_divergences, invariant_checks,
	// invariant_violations, and the diff_program_latency histogram.
	Tel *telemetry.Collector
}

func (cfg *Config) fillDefaults() {
	if cfg.Programs <= 0 {
		cfg.Programs = 25
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Stmts <= 0 {
		cfg.Stmts = 25
	}
	if cfg.Inputs <= 0 {
		cfg.Inputs = 3
	}
	if cfg.ExtraO2 == 0 {
		cfg.ExtraO2 = 2
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 2_000_000
	}
	switch {
	case cfg.Workers == 0:
		cfg.Workers = runtime.GOMAXPROCS(0)
	case cfg.Workers < 0:
		cfg.Workers = 1
	}
	if cfg.MaxDivergences <= 0 {
		cfg.MaxDivergences = 16
	}
}

// Divergence is one oracle violation: two variants of the same program
// disagreed, a build or emulation failed, or a metamorphic invariant did
// not hold. Seed + Variant reproduce it.
type Divergence struct {
	Check   string // "oracle/return", "oracle/calls", "build", "emu", "invariant/<name>"
	Program int    // program index within the run
	Seed    int64  // generator seed of the program (RandomFunc seed)
	Variant string // the variant that disagreed, e.g. "O2/ctx2"
	Detail  string // what differed
	Source  string // the program source, for offline reproduction
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s: program %d (seed %d) variant %s: %s",
		d.Check, d.Program, d.Seed, d.Variant, d.Detail)
}

// Report aggregates one differential run.
type Report struct {
	Programs        int // programs generated and exercised
	Builds          int // variants compiled
	Executions      int // emulator runs
	InvariantChecks int // metamorphic invariant evaluations
	Divergences     []Divergence
}

// OK reports whether the run observed no divergence of any kind.
func (r *Report) OK() bool { return len(r.Divergences) == 0 }

// Summary renders the run in one line.
func (r *Report) Summary() string {
	return fmt.Sprintf("%d programs, %d builds, %d executions, %d invariant checks, %d divergences",
		r.Programs, r.Builds, r.Executions, r.InvariantChecks, len(r.Divergences))
}

// variant is one compilation context of a program.
type variant struct {
	opt tinyc.OptLevel
	ctx int64 // tinyc context-knob seed
}

func (v variant) String() string { return fmt.Sprintf("%v/ctx%d", v.opt, v.ctx%100) }

// variants returns the build matrix for one program: every optimization
// level once, plus extra O2 contexts (the knob-heaviest level, where
// register allocation, block layout, setcc and jump-table decisions all
// vary by seed).
func (cfg *Config) variants(progSeed int64) []variant {
	base := progSeed*31 + 1000
	out := []variant{
		{tinyc.O0, base},
		{tinyc.O1, base + 1},
		{tinyc.O2, base + 2},
		{tinyc.Os, base + 3},
	}
	for j := 0; j < cfg.ExtraO2; j++ {
		out = append(out, variant{tinyc.O2, base + 4 + int64(j)})
	}
	return out
}

// progSeed derives the generator seed of program i. The multipliers
// spread consecutive programs far apart in the generator's seed space
// while keeping the mapping reproducible from (Seed, i) alone.
func (cfg *Config) progSeed(i int) int64 {
	return cfg.Seed*1_000_003 + int64(i)*7919
}

// inputVectors derives the shared argument vectors of one program. The
// first vector is fixed so every program is exercised at least once on
// a known-good shape; the rest are seeded, mixing small positives,
// negatives and zero (the values generated arithmetic is sensitive to).
func (cfg *Config) inputVectors(progSeed int64) [][]uint32 {
	rng := rand.New(rand.NewSource(progSeed ^ 0x5DEECE66D))
	out := [][]uint32{{6, 3, 0}}
	for len(out) < cfg.Inputs {
		a := uint32(int32(rng.Intn(128) - 32))
		b := uint32(int32(rng.Intn(64) - 16))
		s := uint32(rng.Intn(2) * rng.Intn(1000))
		out = append(out, []uint32{a, b, s})
	}
	return out
}

// outcome is what one variant computed on all input vectors.
type outcome struct {
	rets  []uint32
	calls [][]string // build-independent call keys + hooked returns
}

// progResult is the per-program tally a worker hands back.
type progResult struct {
	builds, execs, invChecks int
	divs                     []Divergence
}

// Run executes the whole differential campaign and returns its report.
// The error return is reserved for harness-level failures; divergences
// (including build and emulation errors) are reported in the Report so
// one bad program does not mask the rest of the run.
func Run(cfg Config) (*Report, error) {
	cfg.fillDefaults()
	report := &Report{}

	results := make([]progResult, cfg.Programs)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				pt := cfg.Tel.StartTimer(telemetry.DiffProgramLatency)
				results[i] = cfg.runProgram(i)
				pt.Stop()
			}
		}()
	}
	for i := 0; i < cfg.Programs; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i := range results {
		r := &results[i]
		report.Programs++
		report.Builds += r.builds
		report.Executions += r.execs
		report.InvariantChecks += r.invChecks
		report.Divergences = append(report.Divergences, r.divs...)
		if len(report.Divergences) >= cfg.MaxDivergences {
			report.Divergences = report.Divergences[:cfg.MaxDivergences]
			break
		}
	}
	cfg.Tel.Add(telemetry.DiffPrograms, uint64(report.Programs))
	cfg.Tel.Add(telemetry.DiffBuilds, uint64(report.Builds))
	cfg.Tel.Add(telemetry.DiffExecutions, uint64(report.Executions))
	cfg.Tel.Add(telemetry.DiffDivergences, uint64(len(report.Divergences)))
	cfg.Tel.Add(telemetry.InvariantChecks, uint64(report.InvariantChecks))
	for _, d := range report.Divergences {
		if strings.HasPrefix(d.Check, "invariant/") {
			cfg.Tel.Inc(telemetry.InvariantViolations)
		}
	}
	return report, nil
}

// runProgram generates, builds, emulates and (optionally) invariant-checks
// one program.
func (cfg *Config) runProgram(i int) progResult {
	seed := cfg.progSeed(i)
	src := corpus.RandomFunc(FuncName, seed, corpus.GenConfig{Stmts: cfg.Stmts, Calls: true})
	variants := cfg.variants(seed)
	inputs := cfg.inputVectors(seed)
	res := progResult{}
	diverge := func(check, variant, detail string) {
		res.divs = append(res.divs, Divergence{
			Check: check, Program: i, Seed: seed, Variant: variant,
			Detail: detail, Source: src,
		})
	}

	images := make([][]byte, 0, len(variants))
	built := make([]variant, 0, len(variants))
	for _, v := range variants {
		img, err := tinyc.Build(src, tinyc.Config{Opt: v.opt, Seed: v.ctx})
		if err != nil {
			diverge("build", v.String(), err.Error())
			continue
		}
		res.builds++
		images = append(images, img)
		built = append(built, v)
	}
	if len(images) == 0 {
		return res
	}

	// The compiler/emulator oracle: every variant must agree with the
	// first one on every input vector — same return value, same external
	// calls in the same order with the same normalized arguments.
	var ref *outcome
	for vi, img := range images {
		out, err := cfg.emulate(img, inputs)
		if err != nil {
			diverge("emu", built[vi].String(), err.Error())
			continue
		}
		res.execs += len(inputs)
		if ref == nil {
			ref = out
			continue
		}
		for k := range inputs {
			if out.rets[k] != ref.rets[k] {
				diverge("oracle/return", built[vi].String(), fmt.Sprintf(
					"%s(%v) = %d, want %d (vs %s)",
					FuncName, argInts(inputs[k]), int32(out.rets[k]), int32(ref.rets[k]), built[0]))
			}
			if !equalStrings(out.calls[k], ref.calls[k]) {
				diverge("oracle/calls", built[vi].String(), fmt.Sprintf(
					"%s(%v) call trace %v, want %v (vs %s)",
					FuncName, argInts(inputs[k]), out.calls[k], ref.calls[k], built[0]))
			}
		}
	}

	if !cfg.SkipInvariants {
		checks, divs := cfg.checkInvariants(i, seed, src, built, images)
		res.invChecks += checks
		res.divs = append(res.divs, divs...)
	}
	return res
}

// emulate runs FuncName on every input vector of one image.
func (cfg *Config) emulate(img []byte, inputs [][]uint32) (*outcome, error) {
	m, err := emu.New(img)
	if err != nil {
		return nil, err
	}
	m.MaxSteps = cfg.MaxSteps
	out := &outcome{}
	for _, args := range inputs {
		r, err := m.CallByName(FuncName, args...)
		if err != nil {
			return nil, fmt.Errorf("args %v: %w", argInts(args), err)
		}
		keys := make([]string, len(r.Calls))
		for i, c := range r.Calls {
			keys[i] = fmt.Sprintf("%s->%d", c.Key, c.Ret)
		}
		out.rets = append(out.rets, r.Ret)
		out.calls = append(out.calls, keys)
	}
	return out, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// argInts renders an argument vector with signed values, the way the
// generated source thinks about them.
func argInts(args []uint32) []int32 {
	out := make([]int32, len(args))
	for i, a := range args {
		out[i] = int32(a)
	}
	return out
}
