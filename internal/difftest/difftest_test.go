package difftest

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestRunSmallCampaign is the harness testing itself: a handful of
// programs through the full differential + invariant pipeline must come
// back clean.
func TestRunSmallCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("differential campaign is slow")
	}
	tel := telemetry.New()
	rep, err := Run(Config{Programs: 4, Seed: 7, Tel: tel})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Divergences {
		t.Errorf("divergence: %s", d)
	}
	if rep.Programs != 4 {
		t.Errorf("Programs = %d, want 4", rep.Programs)
	}
	if rep.Builds != 4*6 {
		t.Errorf("Builds = %d, want %d (4 programs x 6 variants)", rep.Builds, 4*6)
	}
	if rep.Executions != 4*6*3 {
		t.Errorf("Executions = %d, want %d", rep.Executions, 4*6*3)
	}
	if rep.InvariantChecks == 0 {
		t.Error("no invariant checks ran")
	}
	snap := tel.Snapshot()
	if got := snap.Counters["diff_programs"]; got != 4 {
		t.Errorf("diff_programs counter = %d, want 4", got)
	}
	if got := snap.Counters["invariant_checks"]; got != uint64(rep.InvariantChecks) {
		t.Errorf("invariant_checks counter = %d, want %d", got, rep.InvariantChecks)
	}
}

// TestRunDeterministic: the same seed must produce the identical report.
func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("differential campaign is slow")
	}
	run := func() *Report {
		rep, err := Run(Config{Programs: 2, Seed: 42, Workers: -1})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Summary() != b.Summary() {
		t.Errorf("same seed, different reports:\n  %s\n  %s", a.Summary(), b.Summary())
	}
}

// TestSeedsDiffer: different master seeds must generate different programs.
func TestSeedsDiffer(t *testing.T) {
	cfgA := Config{Seed: 1}
	cfgB := Config{Seed: 2}
	cfgA.fillDefaults()
	cfgB.fillDefaults()
	if cfgA.progSeed(0) == cfgB.progSeed(0) {
		t.Error("different master seeds derived the same program seed")
	}
}

// TestDivergenceString: the rendered divergence must carry everything
// needed to reproduce — check name, program seed and variant.
func TestDivergenceString(t *testing.T) {
	d := Divergence{Check: "oracle/return", Program: 3, Seed: 12345, Variant: "O2/ctx7", Detail: "boom"}
	s := d.String()
	for _, want := range []string{"oracle/return", "12345", "O2/ctx7", "boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

// TestConfigDefaults: the zero config fills in the documented defaults.
func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	cfg.fillDefaults()
	if cfg.Programs != 25 || cfg.Seed != 1 || cfg.Inputs != 3 || cfg.ExtraO2 != 2 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if cfg.Workers < 1 {
		t.Errorf("Workers = %d, want >= 1", cfg.Workers)
	}
	neg := Config{Workers: -5}
	neg.fillDefaults()
	if neg.Workers != 1 {
		t.Errorf("negative Workers = %d, want clamped to 1", neg.Workers)
	}
}
