// Crossversion reproduces the paper's Fig. 8 scenario: one function
// evolves across application versions (think wget 1.10 / 1.12 / 1.14),
// each release built in its own compilation context. Searching with the
// oldest version shows how many tracelets still match by pure alignment
// and how many are recovered only by the constraint-solving rewrite
// engine.
package main

import (
	"fmt"
	"log"
	"strings"

	tracy "repro"
)

// getftpV0 is the base version of the evolving function.
const getftpV0 = `
int getftp(int sock, char *url, char *out) {
	int status = 0;
	int bytes = 0;
	int retries = 3;
	status = connect_to(sock, url);
	while (status < 0 && retries > 0) {
		retries = retries - 1;
		status = connect_to(sock, url);
	}
	if (status < 0) { return 0 - 1; }
	status = send_cmd(sock, "RETR %s", url);
	while (status > 0) {
		bytes = bytes + recv_block(sock, out);
		status = status - 1;
	}
	logmsg("done %d", bytes);
	return bytes;
}
`

// patches applied cumulatively for each later version.
var patches = []struct {
	version string
	old     string
	new     string
}{
	{"1.12",
		`status = send_cmd(sock, "RETR %s", url);`,
		`status = send_cmd(sock, "RETR %s", url);
	if (status == 0) { status = send_cmd(sock, "LIST %s", url); }`},
	{"1.14",
		`logmsg("done %d", bytes);`,
		`int rate = 0;
	if (bytes > 0) { rate = bytes / elapsed(sock); }
	logmsg("done %d (%d/%d bytes)", bytes, rate);`},
}

func main() {
	// Build the three releases, each in its own context.
	versions := []struct {
		name string
		src  string
		seed int64
	}{{"wget-1.10", getftpV0, 201}}
	src := getftpV0
	for i, p := range patches {
		if !strings.Contains(src, p.old) {
			log.Fatalf("patch %s does not apply", p.version)
		}
		src = strings.Replace(src, p.old, p.new, 1)
		versions = append(versions, struct {
			name string
			src  string
			seed int64
		}{"wget-" + p.version, src, 202 + int64(i)})
	}

	var fns []*tracy.Function
	for _, v := range versions {
		img, err := tracy.CompileTinyCStripped(v.src, tracy.OptO2, v.seed)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		lifted, err := tracy.LoadExecutable(img)
		if err != nil {
			log.Fatal(err)
		}
		fns = append(fns, lifted[0])
		fmt.Printf("%-10s getftp: %2d blocks, %3d instructions\n",
			v.name, lifted[0].NumBlocks(), lifted[0].NumInsts())
	}
	fmt.Println()

	// Query with the oldest version, the paper's Fig. 8 setting, and
	// split each target's matched tracelets into aligned-only vs
	// rewrite-recovered.
	opts := tracy.DefaultOptions()
	query := fns[0]
	fmt.Println("query: getftp from wget-1.10")
	for i, fn := range fns {
		res := tracy.Compare(query, fn, opts)
		direct := float64(res.MatchedDirect) / float64(res.RefTracelets)
		rw := float64(res.MatchedRewrite) / float64(res.RefTracelets)
		bar := strings.Repeat("=", int(direct*40)) + strings.Repeat("+", int(rw*40))
		fmt.Printf("%-10s |%-40s| %5.1f%% aligned, +%4.1f%% via rewrite  match=%v\n",
			versions[i].name, bar, direct*100, rw*100, res.IsMatch)
	}
	fmt.Println("\n'=' matched by alignment alone; '+' recovered only by the rewrite engine")
}
