// Patchdiff demonstrates the accountability the paper argues for
// (Sections 1, 4.3): when two binary functions match, the tracelet
// alignment explains *why* — and the inserted/deleted instructions expose
// what the patch changed, useful to a human analyst triaging a suspected
// silent fix.
package main

import (
	"fmt"
	"log"

	tracy "repro"
)

const before = `
int parse_header(char *pkt, int len, char *out) {
	int kind = 0;
	int size = 0;
	kind = pkt_kind(pkt);
	size = pkt_size(pkt);
	if (kind == 4) {
		copy_bytes(out, pkt, size);
		return size;
	}
	if (kind == 7) {
		copy_bytes(out, pkt, 64);
		return 64;
	}
	return 0;
}
`

// after adds a bounds check (the fix) and a log call.
const after = `
int parse_header(char *pkt, int len, char *out) {
	int kind = 0;
	int size = 0;
	kind = pkt_kind(pkt);
	size = pkt_size(pkt);
	if (size > len) {
		warn("fatal: %s", pkt);
		return 0 - 1;
	}
	if (kind == 4) {
		copy_bytes(out, pkt, size);
		return size;
	}
	if (kind == 7) {
		copy_bytes(out, pkt, 64);
		return 64;
	}
	return 0;
}
`

func lift(src string, seed int64) *tracy.Function {
	img, err := tracy.CompileTinyCStripped(src, tracy.OptO2, seed)
	if err != nil {
		log.Fatal(err)
	}
	fns, err := tracy.LoadExecutable(img)
	if err != nil {
		log.Fatal(err)
	}
	return fns[0]
}

func main() {
	v1 := lift(before, 31)
	v2 := lift(after, 47)

	opts := tracy.DefaultOptions()
	res := tracy.Compare(v1, v2, opts)
	fmt.Printf("parse_header v1 vs v2: similarity %.1f%% (match=%v)\n\n",
		res.SimilarityScore*100, res.IsMatch)

	// Walk the matched tracelets; print the instructions the patch
	// inserted (present only in v2's tracelet) and deleted.
	matches := tracy.Explain(v1, v2, opts)
	seenIns := map[string]bool{}
	fmt.Println("instructions introduced by the patch (per matched tracelet):")
	for _, m := range matches {
		if len(m.Inserted) == 0 {
			continue
		}
		tgt := collectTracelet(v2, m.TgtBlocks)
		for _, idx := range m.Inserted {
			if idx < len(tgt) && !seenIns[tgt[idx]] {
				seenIns[tgt[idx]] = true
				fmt.Printf("  + %s\n", tgt[idx])
			}
		}
	}
	if len(seenIns) == 0 {
		fmt.Println("  (none)")
	}
	fmt.Println("\nthe new cmp/branch and the _warn call are the silent bounds-check fix.")
}

// collectTracelet renders the instructions of the tracelet spanning the
// given block numbers of a lifted function, jumps stripped — mirroring
// how Explain indexes inserted/deleted instructions.
func collectTracelet(fn *tracy.Function, blocks []int) []string {
	var out []string
	for _, bi := range blocks {
		for _, in := range fn.Graph.Blocks[bi].Body() {
			out = append(out, in.String())
		}
	}
	return out
}
