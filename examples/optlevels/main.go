// Optlevels reproduces the paper's Section 8 observation about
// optimization levels: a function compiled at -O1 can be used to find the
// same source built at -O1 and -O2, but -O0 and -Os builds are "very
// different and are not found". The paper's suggested workaround is also
// shown: when the source is available, compile the query at every level
// and search them one by one.
package main

import (
	"fmt"
	"log"

	tracy "repro"
)

// process has small helpers that O1/O2 inline but O0/Os call — the main
// structural divergence between the levels.
const src = `
int process(int a, int b, char *s) {
	int total = 0;
	int i = 0;
	int limit = clampv(b, 64);
	for (i = 0; i < limit; i = i + 1) {
		total = total + weight(i, a);
		if (total > 4096) {
			total = total / 2;
			logv("overflow", total);
		}
	}
	if (checkv(total, a) == 1) {
		printf("result: %d", total);
	} else {
		total = clampv(total, 255);
		printf("error %d at %s", total, s);
	}
	while (total % 3 != 0) { total = total + weight(total, 1); }
	return total;
}
int clampv(int x, int hi) {
	if (x > hi) { x = hi; }
	if (x < 0) { x = 0; }
	return x;
}
int weight(int i, int a) {
	int w = i * 3 + a % 7;
	return w;
}
int checkv(int t, int a) {
	int ok = 0;
	if (t > a && t < 100000) { ok = 1; }
	return ok;
}
`

func largest(img []byte) *tracy.Function {
	fns, err := tracy.LoadExecutable(img)
	if err != nil {
		log.Fatal(err)
	}
	best := fns[0]
	for _, fn := range fns[1:] {
		if fn.NumInsts() > best.NumInsts() {
			best = fn
		}
	}
	return best
}

func build(opt tracy.OptLevel, seed int64) *tracy.Function {
	img, err := tracy.CompileTinyCStripped(src, opt, seed)
	if err != nil {
		log.Fatal(err)
	}
	return largest(img)
}

func main() {
	levels := []struct {
		name string
		opt  tracy.OptLevel
	}{
		{"O0", tracy.OptO0}, {"O1", tracy.OptO1},
		{"O2", tracy.OptO2}, {"Os", tracy.OptOs},
	}
	opts := tracy.DefaultOptions()

	fmt.Println("query compiled at O1; targets are the same source at each level:")
	query := build(tracy.OptO1, 501)
	for _, lv := range levels {
		tgt := build(lv.opt, 601)
		res := tracy.Compare(query, tgt, opts)
		verdict := "not found"
		if res.IsMatch {
			verdict = "FOUND"
		}
		fmt.Printf("  %-3s similarity %5.1f%%  %s\n",
			lv.name, res.SimilarityScore*100, verdict)
	}

	fmt.Println("\nworkaround (paper §8): compile the query at every level and search each:")
	for _, lv := range levels {
		q := build(lv.opt, 501)
		tgt := build(lv.opt, 601)
		res := tracy.Compare(q, tgt, opts)
		fmt.Printf("  %s query vs %s build: %5.1f%%  match=%v\n",
			lv.name, lv.name, res.SimilarityScore*100, res.IsMatch)
	}
}
