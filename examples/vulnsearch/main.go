// Vulnsearch reproduces the paper's headline use case (Section 6.1,
// "Detecting vulnerable functions", modeled on CVE-2010-0624 in GNU
// tar/cpio): a function with an exploitable bug is compiled into several
// "packages" — different applications, different versions, different
// compilation contexts — all stripped. Searching with the locally-built
// vulnerable function as the query pinpoints every embedding.
package main

import (
	"fmt"
	"log"

	tracy "repro"
)

// rtapeRead is the vulnerable function: the length field from the wire is
// trusted before the bounds check (the same bug shape as rtapelib.c's
// heap overflow).
const rtapeRead = `
int rtape_read(int fd, char *buf, int len) {
	int count = 0;
	int status = 0;
	int i = 0;
	status = command(fd, "R");
	if (status < 0) { return 0 - 1; }
	for (i = 0; i < status; i = i + 1) {
		count = count + readbyte(fd, buf + i);
		if (count % 512 == 0) {
			update_checksum(buf, count);
		}
	}
	if (count > len) {
		report("overflow", count);
	}
	return count;
}
`

// patchedRtapeRead is the fixed version (the bounds check moved before
// the copy loop) — a later release.
const patchedRtapeRead = `
int rtape_read(int fd, char *buf, int len) {
	int count = 0;
	int status = 0;
	int i = 0;
	status = command(fd, "R");
	if (status < 0) { return 0 - 1; }
	if (status > len) {
		report("overflow", status);
		return 0 - 2;
	}
	for (i = 0; i < status; i = i + 1) {
		count = count + readbyte(fd, buf + i);
		if (count % 512 == 0) {
			update_checksum(buf, count);
		}
	}
	return count;
}
`

// Application code that surrounds the library function in each package.
var hostFuncs = []string{
	`int tar_main(int argc, char *argv, char *env) {
		int mode = option(argv, "x");
		int n = 0;
		if (mode == 1) { n = extract(argv, env); }
		else if (mode == 2) { n = create(argv, env); }
		while (n > 0) { n = n - step(argv); }
		return n;
	}`,
	`int cpio_copy(int in, int out, char *pattern) {
		int total = 0;
		int block = 0;
		for (block = nextblock(in); block != 0; block = nextblock(in)) {
			if (matches(pattern, block) == 1) {
				total = total + emit(out, block);
			}
		}
		printf("%d/%d bytes", total, block);
		return total;
	}`,
	`int checksum(int a, int b, char *s) {
		int acc = 0;
		int i = 0;
		for (i = 0; i < a; i = i + 1) { acc = acc * 31 + i % 7; }
		while (b > 0) { acc = acc + b; b = b - 1; }
		return acc;
	}`,
}

type pkg struct {
	name string
	src  string
	seed int64
}

func main() {
	packages := []pkg{
		{"tar-1.22", rtapeRead + hostFuncs[0] + hostFuncs[2], 101},
		{"tar-1.21", rtapeRead + hostFuncs[0], 102},
		{"cpio-2.10", rtapeRead + hostFuncs[1], 103},
		{"tar-1.23-fixed", patchedRtapeRead + hostFuncs[0] + hostFuncs[2], 104},
		{"coreutils-cp", hostFuncs[1] + hostFuncs[2], 105},
	}

	db := tracy.NewDatabase()
	for _, p := range packages {
		img, err := tracy.CompileTinyC(p.src, tracy.OptO2, p.seed)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		truth, err := tracy.TruthOf(img)
		if err != nil {
			log.Fatal(err)
		}
		stripped, err := tracy.StripExecutable(img)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.IndexExecutableWithTruth(p.name, stripped, truth); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d stripped functions from %d packages\n\n",
		db.NumFunctions(), len(packages))

	// Compile the vulnerable function locally (our own context) and use
	// it as the query — exactly the paper's workflow.
	qimg, err := tracy.CompileTinyCStripped(rtapeRead, tracy.OptO2, 999)
	if err != nil {
		log.Fatal(err)
	}
	qfns, err := tracy.LoadExecutable(qimg)
	if err != nil {
		log.Fatal(err)
	}
	query := qfns[0]

	fmt.Println("searching for the vulnerable rtape_read...")
	hits := db.Search(query, tracy.DefaultOptions())
	for _, h := range hits {
		verdict := "  "
		if h.Result.IsMatch {
			verdict = "!!"
		}
		fmt.Printf("%s %5.1f%%  %-16s %-14s (truth: %s)\n",
			verdict, h.Result.SimilarityScore*100, h.Exe, h.Name, h.Truth)
	}
	fmt.Println("\n!! = flagged as containing the vulnerable function")
	fmt.Println("note the patched tar-1.23 scores well below the vulnerable embeddings,")
	fmt.Println("and unrelated functions lower still.")
}
