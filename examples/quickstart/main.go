// Quickstart: compile the paper's motivating example (doCommand1 and its
// patched doCommand2, Figs. 1-2 of the paper), lift both from stripped
// binaries, and measure tracelet similarity — printing the per-tracelet
// evidence, including which matches needed the rewrite engine.
package main

import (
	"fmt"
	"log"

	tracy "repro"
)

const doCommand1 = `
int doCommand1(int cmd, char *optionalMsg, char *logPath) {
	int counter = 1;
	int f = fopen(logPath, "w");
	if (cmd == 1) {
		printf("(%d) HELLO", counter);
	} else if (cmd == 2) {
		printf(optionalMsg);
	}
	fprintf(f, "Cmd %d DONE", counter);
	return counter;
}
`

const doCommand2 = `
int doCommand2(int cmd, char *optionalMsg, char *logPath) {
	int counter = 1;
	int bytes = 0;
	int f = fopen(logPath, "w");
	if (cmd == 1) {
		printf("(%d) HELLO", counter);
		bytes = bytes + 4;
	} else if (cmd == 2) {
		printf(optionalMsg);
		bytes = bytes + strlen(optionalMsg);
	} else if (cmd == 3) {
		printf("(%d) BYE", counter);
		bytes = bytes + 3;
	}
	fprintf(f, "Cmd %d\\%d DONE", counter, bytes);
	return counter;
}
`

func liftOne(src string, seed int64) *tracy.Function {
	img, err := tracy.CompileTinyCStripped(src, tracy.OptO2, seed)
	if err != nil {
		log.Fatal(err)
	}
	fns, err := tracy.LoadExecutable(img)
	if err != nil {
		log.Fatal(err)
	}
	return fns[0]
}

func main() {
	// The two versions, compiled in different contexts (different seeds),
	// then stripped: different registers, stack offsets and block layout.
	orig := liftOne(doCommand1, 11)
	patched := liftOne(doCommand2, 23)

	fmt.Printf("original %s: %d blocks, %d instructions\n",
		orig.Name, orig.NumBlocks(), orig.NumInsts())
	fmt.Printf("patched  %s: %d blocks, %d instructions\n\n",
		patched.Name, patched.NumBlocks(), patched.NumInsts())

	fmt.Println("original CFG (lifted from the stripped binary):")
	fmt.Println(tracy.Disassemble(orig))

	opts := tracy.DefaultOptions()
	res := tracy.Compare(orig, patched, opts)
	fmt.Printf("similarity: %.1f%%  (match=%v)\n", res.SimilarityScore*100, res.IsMatch)
	fmt.Printf("tracelets: %d total, %d matched by alignment, %d only after rewriting\n\n",
		res.RefTracelets, res.MatchedDirect, res.MatchedRewrite)

	fmt.Println("per-tracelet evidence:")
	for _, m := range tracy.Explain(orig, patched, opts) {
		how := "aligned"
		if m.ViaRewrite {
			how = "rewritten"
		}
		fmt.Printf("  blocks %v ~ %v  score %.1f%%  (%s; %d inserted, %d deleted)\n",
			m.RefBlocks, m.TgtBlocks, m.Score*100, how, len(m.Inserted), len(m.Deleted))
	}
}
