package tracy

// Benchmarks backing the paper's quantitative tables. Each benchmark maps
// to an evaluation artifact (see DESIGN.md):
//
//	BenchmarkExtractTracelets     Table 1 (extraction throughput per k)
//	BenchmarkTraceletAlign        Table 4 row "Tracelet / Align"
//	BenchmarkTraceletAlignRewrite Table 4 row "Tracelet / Align&RW"
//	BenchmarkFunctionCompare*     Table 4 rows "Function / *"
//	BenchmarkSearch               Table 1 #Compares (a query vs a database)
//	BenchmarkNgram / Graphlet     Table 3 baselines
//	BenchmarkLift                 disassembly+preprocessing substrate
//	BenchmarkCompile              corpus generation substrate
//
// Absolute times land in bench_output.txt; EXPERIMENTS.md compares shapes
// against the paper's Table 4.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/align"
	"repro/internal/bin"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/emu"
	"repro/internal/graphlet"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/ngram"
	"repro/internal/prep"
	"repro/internal/rewrite"
	"repro/internal/telemetry"
	"repro/internal/tinyc"
	"repro/internal/tracelet"
	"repro/internal/x86"
)

// benchFunc compiles a large random function (~Table 4's "functions
// containing ~200 basic blocks") in the given context.
func benchFunc(b testing.TB, stmts int, seed int64) *prep.Function {
	b.Helper()
	src := corpus.RandomFunc("bench", 31, corpus.GenConfig{Stmts: stmts, Calls: true})
	img, err := tinyc.BuildStripped(src, tinyc.Config{Opt: tinyc.O2, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	fns, err := prep.LiftImage(img)
	if err != nil {
		b.Fatal(err)
	}
	best := fns[0]
	for _, fn := range fns[1:] {
		if fn.NumInsts() > best.NumInsts() {
			best = fn
		}
	}
	return best
}

func BenchmarkExtractTracelets(b *testing.B) {
	fn := benchFunc(b, 240, 41)
	for k := 1; k <= 5; k++ {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ts := tracelet.Extract(fn.Graph, k)
				if len(ts) == 0 && k == 1 {
					b.Fatal("no tracelets")
				}
			}
		})
	}
}

// traceletPairs draws matched-size tracelet pairs from two contexts of the
// same function.
func traceletPairs(b *testing.B) ([]*tracelet.Tracelet, []*tracelet.Tracelet) {
	b.Helper()
	ref := core.Decompose(benchFunc(b, 240, 41), 3)
	tgt := core.Decompose(benchFunc(b, 240, 42), 3)
	if len(ref.Tracelets) == 0 || len(tgt.Tracelets) == 0 {
		b.Fatal("no tracelets")
	}
	return ref.Tracelets, tgt.Tracelets
}

func BenchmarkTraceletAlign(b *testing.B) {
	refs, tgts := traceletPairs(b)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := refs[rng.Intn(len(refs))]
		t := tgts[rng.Intn(len(tgts))]
		_ = align.ScoreBlocks(r.Blocks, t.Blocks)
	}
}

func BenchmarkTraceletAlignRewrite(b *testing.B) {
	refs, tgts := traceletPairs(b)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := refs[rng.Intn(len(refs))]
		t := tgts[rng.Intn(len(tgts))]
		al := align.AlignBlocks(r.Blocks, t.Blocks)
		rw := rewrite.Rewrite(r.Blocks, t.Blocks, al)
		_ = align.ScoreBlocks(r.Blocks, rw.Blocks)
	}
}

func BenchmarkFunctionCompare(b *testing.B) {
	ref := core.Decompose(benchFunc(b, 240, 41), 3)
	tgt := core.Decompose(benchFunc(b, 240, 42), 3)
	m := core.NewMatcher(core.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Compare(ref, tgt)
	}
}

func BenchmarkFunctionCompareNoRewrite(b *testing.B) {
	ref := core.Decompose(benchFunc(b, 240, 41), 3)
	tgt := core.Decompose(benchFunc(b, 240, 42), 3)
	opts := core.DefaultOptions()
	opts.UseRewrite = false
	m := core.NewMatcher(opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Compare(ref, tgt)
	}
}

// benchDB builds a small indexed corpus once per benchmark run.
func benchDB(b *testing.B) *index.DB {
	b.Helper()
	c, err := corpus.Build(corpus.BuildConfig{
		Seed: 5, ContextCopies: 3, Versions: 2, NoiseExes: 3,
		FuncsPerExe: 4, TargetStmts: 50, FillerStmts: 20, Opt: tinyc.O2,
	})
	if err != nil {
		b.Fatal(err)
	}
	db := index.New()
	for _, e := range c.Exes {
		if err := db.AddImage(e.Name, e.Image, e.Truth); err != nil {
			b.Fatal(err)
		}
	}
	db.Decomposed(3) // prebuild
	return db
}

func BenchmarkSearch(b *testing.B) {
	db := benchDB(b)
	query := benchFunc(b, 50, 99)
	opts := core.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = db.Search(query, opts)
	}
}

func BenchmarkNgramExtract(b *testing.B) {
	fn := benchFunc(b, 240, 41)
	opts := ngram.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ngram.Extract(fn, opts)
	}
}

func BenchmarkNgramSimilarity(b *testing.B) {
	opts := ngram.DefaultOptions()
	x := ngram.Extract(benchFunc(b, 240, 41), opts)
	y := ngram.Extract(benchFunc(b, 240, 42), opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ngram.Similarity(x, y)
	}
}

func BenchmarkGraphletExtract(b *testing.B) {
	fn := benchFunc(b, 240, 41)
	opts := graphlet.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = graphlet.Extract(fn, opts)
	}
}

func BenchmarkLift(b *testing.B) {
	src := corpus.RandomFunc("bench", 31, corpus.GenConfig{Stmts: 240, Calls: true})
	img, err := tinyc.BuildStripped(src, tinyc.Config{Opt: tinyc.O2, Seed: 41})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prep.LiftImage(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	src := corpus.RandomFunc("bench", 31, corpus.GenConfig{Stmts: 240, Calls: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tinyc.Build(src, tinyc.Config{Opt: tinyc.O2, Seed: 41}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSPRewriteSolve(b *testing.B) {
	refs, tgts := traceletPairs(b)
	// Pick the largest tracelet pair for a heavy solver instance.
	r, t := refs[0], tgts[0]
	for _, c := range refs {
		if c.NumInsts() > r.NumInsts() {
			r = c
		}
	}
	for _, c := range tgts {
		if c.NumInsts() > t.NumInsts() {
			t = c
		}
	}
	al := align.AlignBlocks(r.Blocks, t.Blocks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rewrite.Rewrite(r.Blocks, t.Blocks, al)
	}
}

func BenchmarkDecodeAll(b *testing.B) {
	src := corpus.RandomFunc("bench", 31, corpus.GenConfig{Stmts: 240, Calls: true})
	img, err := tinyc.BuildStripped(src, tinyc.Config{Opt: tinyc.O2, Seed: 41})
	if err != nil {
		b.Fatal(err)
	}
	f, err := bin.Read(img)
	if err != nil {
		b.Fatal(err)
	}
	fns, err := f.Functions()
	if err != nil {
		b.Fatal(err)
	}
	code, addr := fns[0].Code, fns[0].Addr
	b.SetBytes(int64(len(code)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x86.DecodeAll(code, addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmulate(b *testing.B) {
	src := corpus.RandomFunc("bench", 31, corpus.GenConfig{Stmts: 60, Calls: true})
	img, err := tinyc.Build(src, tinyc.Config{Opt: tinyc.O2, Seed: 41})
	if err != nil {
		b.Fatal(err)
	}
	m, err := emu.New(img)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.CallByName("bench", 6, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExplain(b *testing.B) {
	ref := core.Decompose(benchFunc(b, 120, 41), 3)
	tgt := core.Decompose(benchFunc(b, 120, 42), 3)
	m := core.NewMatcher(core.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Explain(ref, tgt)
	}
}

func BenchmarkMetricsCROC(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	samples := make([]metrics.Sample, 5000)
	for i := range samples {
		samples[i] = metrics.Sample{Score: rng.Float64(), Positive: rng.Intn(50) == 0}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = metrics.CROCAUC(samples)
	}
}

// BenchmarkFunctionCompareInstrumented is BenchmarkFunctionCompare with a
// live telemetry collector attached; the delta against the plain benchmark
// is the instrumentation overhead (target: under a few percent).
func BenchmarkFunctionCompareInstrumented(b *testing.B) {
	ref := core.Decompose(benchFunc(b, 240, 41), 3)
	tgt := core.Decompose(benchFunc(b, 240, 42), 3)
	opts := core.DefaultOptions()
	opts.Tel = telemetry.New()
	m := core.NewMatcher(opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Compare(ref, tgt)
	}
}

// TestTelemetryOverheadReport measures Compare throughput with and without
// a collector and writes BENCH_telemetry.json. A single point estimate on a
// shared runner is noise — early runs reported a *negative* overhead — so
// the test takes paired samples (instrumented and noop interleaved, order
// alternating each round) and reports the mean overhead with a 95%
// confidence interval. It fails only when the interval's lower bound sits
// above the target, i.e. on a statistically significant regression.
func TestTelemetryOverheadReport(t *testing.T) {
	if testing.Short() {
		t.Skip("timing report; skipped in -short mode")
	}
	ref := core.Decompose(benchFunc(t, 120, 41), 3)
	tgt := core.Decompose(benchFunc(t, 120, 42), 3)

	noop := core.NewMatcher(core.DefaultOptions())
	iOpts := core.DefaultOptions()
	iOpts.Tel = telemetry.New()
	inst := core.NewMatcher(iOpts)

	// Warm both paths so JIT-ish effects (page faults, cache fills, branch
	// history) are paid before measurement.
	for i := 0; i < 3; i++ {
		noop.Compare(ref, tgt)
		inst.Compare(ref, tgt)
	}

	// Paired samples: each round times a small batch of ops on both
	// matchers back to back, alternating which goes first, so clock
	// drift, GC pauses and thermal state hit both sides equally and the
	// per-round *difference* is what carries signal.
	const (
		rounds   = 30
		batchOps = 3
	)
	timeBatch := func(m *core.Matcher) float64 {
		t0 := time.Now()
		for i := 0; i < batchOps; i++ {
			_ = m.Compare(ref, tgt)
		}
		return float64(time.Since(t0).Nanoseconds()) / batchOps
	}
	var noopNS, instNS float64
	diffs := make([]float64, rounds) // per-round relative overhead, in percent
	for i := 0; i < rounds; i++ {
		var n, ins float64
		if i%2 == 0 {
			n = timeBatch(noop)
			ins = timeBatch(inst)
		} else {
			ins = timeBatch(inst)
			n = timeBatch(noop)
		}
		noopNS += n
		instNS += ins
		diffs[i] = (ins - n) / n * 100
	}
	noopNS /= rounds
	instNS /= rounds

	// Mean and 95% CI of the paired relative differences (t ≈ 2.045 for
	// 29 degrees of freedom).
	var mean float64
	for _, d := range diffs {
		mean += d
	}
	mean /= rounds
	var ss float64
	for _, d := range diffs {
		ss += (d - mean) * (d - mean)
	}
	stderr := math.Sqrt(ss/(rounds-1)) / math.Sqrt(rounds)
	const t95 = 2.045
	lo, hi := mean-t95*stderr, mean+t95*stderr

	const target = 3.0
	report := map[string]any{
		"benchmark":              "FunctionCompare (120-stmt pair, k=3)",
		"methodology":            "paired interleaved rounds, alternating order; overhead is the mean per-round relative difference with a 95% t-interval",
		"noop_ns_per_op":         noopNS,
		"instrumented_ns_per_op": instNS,
		"overhead_pct":           mean,
		"overhead_ci95_pct":      []float64{lo, hi},
		"rounds":                 rounds,
		"ops_per_round":          batchOps,
		"target_overhead_pct":    target,
		"significant_regression": lo > target,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_telemetry.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("noop %.0f ns/op, instrumented %.0f ns/op, overhead %.2f%% (95%% CI [%.2f%%, %.2f%%])",
		noopNS, instNS, mean, lo, hi)
	if lo > target {
		t.Errorf("instrumentation overhead %.2f%% (CI low %.2f%%) is significantly above the %.0f%% target",
			mean, lo, target)
	}
}

func BenchmarkFunctionCompareDedupe(b *testing.B) {
	ref := core.Decompose(benchFunc(b, 240, 41), 3)
	tgt := core.Decompose(benchFunc(b, 240, 42), 3)
	opts := core.DefaultOptions()
	opts.DedupeQuery = true
	m := core.NewMatcher(opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Compare(ref, tgt)
	}
}
