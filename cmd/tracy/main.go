// Command tracy is the command-line front end of the tracelet search
// engine, including the long-running query service (tracy serve) and its
// client (tracy query). See internal/cli for the command set.
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	if err := cli.Run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracy:", err)
		os.Exit(1)
	}
}
