// Command tinycc compiles TinyC source files into ELF32 (i386)
// executables using the compiler substrate of the reproduction:
//
//	tinycc -o prog.bin -O2 -seed 7 -strip prog.c
//
// The -seed flag selects the compilation context: register-allocation
// order, stack layout, branch layout and scheduling decisions; the same
// source with different seeds models the same code compiled into
// different executables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bin"
	"repro/internal/tinyc"
)

func main() {
	out := flag.String("o", "a.out", "output file")
	optFlag := flag.String("O", "2", "optimization level: 0, 1, 2 or s")
	seed := flag.Int64("seed", 1, "compilation context seed")
	strip := flag.Bool("strip", false, "strip local symbols")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "tinycc: no input files")
		os.Exit(2)
	}
	var opt tinyc.OptLevel
	switch *optFlag {
	case "0":
		opt = tinyc.O0
	case "1":
		opt = tinyc.O1
	case "2":
		opt = tinyc.O2
	case "s":
		opt = tinyc.Os
	default:
		fmt.Fprintf(os.Stderr, "tinycc: bad -O %q\n", *optFlag)
		os.Exit(2)
	}
	var srcs []string
	for _, path := range flag.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tinycc:", err)
			os.Exit(1)
		}
		srcs = append(srcs, string(b))
	}
	img, err := tinyc.Build(strings.Join(srcs, "\n"), tinyc.Config{Opt: opt, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tinycc:", err)
		os.Exit(1)
	}
	if *strip {
		if img, err = bin.Strip(img); err != nil {
			fmt.Fprintln(os.Stderr, "tinycc:", err)
			os.Exit(1)
		}
	}
	if err := os.WriteFile(*out, img, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "tinycc:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d bytes (-O%s, seed %d, stripped=%v)\n",
		*out, len(img), *optFlag, *seed, *strip)
}
